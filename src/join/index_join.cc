#include "join/index_join.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "geometry/pip.h"
#include "join/batch_pipeline.h"

namespace rj {

namespace {

/// Procedure JoinPoint over one range of points using the given index;
/// accumulates into `out`. Shared by all flavours; templated over the row
/// accessor (PointTable or a zero-copy data::BlockView — both expose
/// At(i) and attribute(c)[i]) so the block-source scan can run straight
/// off the mmap without a scratch copy.
template <typename Rows>
void JoinPointRange(const Rows& points, const PolygonSet& polys,
                    const GridIndex& index, const IndexJoinOptions& options,
                    std::size_t begin, std::size_t end,
                    raster::ResultArrays* out) {
  const bool has_weight = options.weight_column != PointTable::npos;

  for (std::size_t i = begin; i < end; ++i) {
    if (!options.filters.Matches(points, i)) continue;

    const Point p = points.At(i);
    const float w =
        has_weight ? points.attribute(options.weight_column)[i] : 0.0f;
    auto [cand_begin, cand_end] = index.Candidates(p);
    for (const std::int32_t* c = cand_begin; c != cand_end; ++c) {
      const Polygon& poly = polys[static_cast<std::size_t>(*c)];
      if (!poly.Contains(p)) continue;
      const std::size_t id = static_cast<std::size_t>(poly.id());
      out->count[id] += 1.0;
      if (has_weight) {
        out->sum[id] += w;
        out->min[id] = std::min(out->min[id], static_cast<double>(w));
        out->max[id] = std::max(out->max[id], static_cast<double>(w));
      }
    }
  }
}

/// The one device-flavour execution core both public overloads reach (see
/// raster_join_bounded.cc for the pattern).
Result<JoinResult> IndexDeviceBlockJoin(gpu::Device* device,
                                        const data::PointBlockSource& source,
                                        std::vector<std::size_t> scan,
                                        const PolygonSet& polys,
                                        const BBox& world,
                                        const IndexJoinOptions& options,
                                        bool overlap) {
  RJ_RETURN_NOT_OK(ValidatePolygonIds(polys));
  RJ_RETURN_NOT_OK(
      ValidateWeightColumnCount(source.num_attributes(),
                                options.weight_column));
  RJ_RETURN_NOT_OK(
      ValidateFiltersCount(source.num_attributes(), options.filters));

  JoinResult result(polys.size());

  // Build the grid index on the device, on the fly, per query (§6.1) —
  // unless the caller provides one it built (and cached) with identical
  // parameters, in which case the rebuild (and its kIndexBuild phase) is
  // skipped without changing any result bit.
  std::optional<GridIndex> built;
  const GridIndex* index = options.prebuilt_index;
  if (index == nullptr) {
    Timer index_timer;
    RJ_ASSIGN_OR_RETURN(GridIndex fresh,
                        GridIndex::Build(polys, world,
                                         options.index_resolution,
                                         options.assign_mode));
    built.emplace(std::move(fresh));
    index = &*built;
    result.timing.Add(phase::kIndexBuild, index_timer.ElapsedSeconds());
  }

  // Out-of-core batching: transfer each batch once (batch b+1 prefetched
  // by the pipeline while batch b's PIP stage runs), then run the PIP
  // compute stage over it.
  const std::vector<std::size_t> columns =
      UploadColumns(options.filters, options.weight_column);

  // Per-thread metering window (see pip.h): a global-counter window would
  // absorb concurrent queries' tests on a shared device.
  std::uint64_t worker_pips = 0;
  const std::size_t pip_before = GetThreadPipTestCount();
  join::BatchPipeline pipeline(device, &source, std::move(scan), columns,
                               {overlap});
  for (;;) {
    RJ_ASSIGN_OR_RETURN(std::optional<join::BatchPipeline::BatchView> view,
                        pipeline.Acquire());
    if (!view.has_value()) break;
    const PointTable& rows = *view->rows;
    const std::size_t begin = view->begin;
    const std::size_t end = view->end;
    {
      // PIP compute stage: split across the device's workers (the SIMT
      // analogue), each accumulating into a private result array. Guard on
      // the chunk count, not the worker count: ParallelFor runs a single
      // chunk inline on the calling thread, whose PIP tests the outer
      // window below already captures (counting them per-chunk too would
      // double-meter them).
      ScopedPhase sp(&result.timing, phase::kProcessing);
      ThreadPool& pool = device->pool();
      const std::size_t num_chunks = pool.NumChunks(end - begin);
      if (num_chunks <= 1) {
        JoinPointRange(rows, polys, *index, options, begin, end,
                       &result.arrays);
      } else {
        std::vector<raster::ResultArrays> partials(
            num_chunks, raster::ResultArrays(polys.size()));
        std::vector<std::uint64_t> pips_per_chunk(num_chunks, 0);
        pool.ParallelFor(end - begin, [&](std::size_t lo, std::size_t hi,
                                          std::size_t worker) {
          const std::size_t chunk_pips_before = GetThreadPipTestCount();
          JoinPointRange(rows, polys, *index, options, begin + lo,
                         begin + hi, &partials[worker]);
          pips_per_chunk[worker] += GetThreadPipTestCount() -
                                    chunk_pips_before;
        });
        for (const auto& partial : partials) result.arrays.AddFrom(partial);
        for (const std::uint64_t p : pips_per_chunk) worker_pips += p;
      }
    }
    pipeline.Release(*view);
    device->counters().AddBatches(1);
  }
  RJ_RETURN_NOT_OK(pipeline.Drain(&result.timing));
  device->counters().AddPipTests((GetThreadPipTestCount() - pip_before) +
                                 worker_pips);
  return result;
}

}  // namespace

Result<JoinResult> IndexJoinDevice(gpu::Device* device,
                                   const PointTable& points,
                                   const PolygonSet& polys, const BBox& world,
                                   const IndexJoinOptions& options) {
  const std::size_t bytes_per_point =
      UploadBytesPerPoint(options.filters, options.weight_column);
  bool overlap = options.overlap_transfers;
  std::size_t batch = options.batch_size;
  if (batch == 0) {
    const UploadPlan plan = PlanUpload(device->bytes_free(), bytes_per_point,
                                       points.size(), overlap);
    batch = plan.batch_size;
    overlap = plan.overlap_transfers;
  }

  data::TableBlockSource adapter(&points, std::max<std::size_t>(batch, 1));
  std::vector<std::size_t> scan(adapter.num_blocks());
  for (std::size_t b = 0; b < scan.size(); ++b) scan[b] = b;
  return IndexDeviceBlockJoin(device, adapter, std::move(scan), polys, world,
                              options, overlap);
}

Result<JoinResult> IndexJoinDevice(gpu::Device* device,
                                   const data::PointBlockSource& source,
                                   const PolygonSet& polys, const BBox& world,
                                   const IndexJoinOptions& options) {
  // Pruning against `world` is exact for this variant: the index is built
  // over `world`, and Candidates yields nothing outside its extent.
  BlockSelection sel = SelectBlocks(source, options.filters, &world,
                                    options.enable_block_pruning);
  device->counters().AddBlocksScanned(sel.scanned);
  device->counters().AddBlocksPruned(sel.pruned);
  return IndexDeviceBlockJoin(device, source, std::move(sel.blocks), polys,
                              world, options, options.overlap_transfers);
}

Result<JoinResult> IndexJoinCpu(const PointTable& points,
                                const PolygonSet& polys,
                                const GridIndex& index,
                                const IndexJoinOptions& options,
                                int num_threads) {
  RJ_RETURN_NOT_OK(ValidatePolygonIds(polys));
  RJ_RETURN_NOT_OK(ValidateWeightColumn(points, options.weight_column));
  RJ_RETURN_NOT_OK(ValidateFilters(points, options.filters));
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }

  JoinResult result(polys.size());
  ScopedPhase sp(&result.timing, phase::kProcessing);

  if (num_threads == 1) {
    JoinPointRange(points, polys, index, options, 0, points.size(),
                   &result.arrays);
    return result;
  }

  // Parallel version: per-thread accumulators merged at the end, mirroring
  // the paper's OpenMP implementation with thread-local aggregates (§7.1).
  ThreadPool pool(static_cast<std::size_t>(num_threads));
  std::vector<raster::ResultArrays> partials(
      pool.num_threads(), raster::ResultArrays(polys.size()));
  pool.ParallelFor(points.size(), [&](std::size_t begin, std::size_t end,
                                      std::size_t worker) {
    JoinPointRange(points, polys, index, options, begin, end,
                   &partials[worker]);
  });
  for (const auto& partial : partials) result.arrays.AddFrom(partial);
  return result;
}

Result<JoinResult> IndexJoinCpu(const data::PointBlockSource& source,
                                const PolygonSet& polys,
                                const GridIndex& index,
                                const IndexJoinOptions& options,
                                int num_threads, IndexJoinBlockStats* stats) {
  RJ_RETURN_NOT_OK(ValidatePolygonIds(polys));
  RJ_RETURN_NOT_OK(
      ValidateWeightColumnCount(source.num_attributes(),
                                options.weight_column));
  RJ_RETURN_NOT_OK(
      ValidateFiltersCount(source.num_attributes(), options.filters));
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }

  const BlockSelection sel = SelectBlocks(source, options.filters,
                                          &index.extent(),
                                          options.enable_block_pruning);
  if (stats != nullptr) {
    stats->blocks_scanned = sel.scanned;
    stats->blocks_pruned = sel.pruned;
  }

  JoinResult result(polys.size());
  ScopedPhase sp(&result.timing, phase::kProcessing);

  // One pool and one block scratch for the whole scan: the working set is
  // a single block, never the table — and for RAM-cached mappings
  // (BlockFileReader) and table adapters ViewBlock skips even the block
  // copy, scanning the source's storage in place.
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(static_cast<std::size_t>(num_threads));
  PointTable scratch;
  for (const std::size_t b : sel.blocks) {
    RJ_ASSIGN_OR_RETURN(data::BlockView view, source.ViewBlock(b, &scratch));
    if (pool.has_value()) {
      // Per-block merge in ascending worker order: deterministic for any
      // thread count (and exact for the integer-valued weights the repo's
      // determinism suite uses).
      std::vector<raster::ResultArrays> partials(
          pool->num_threads(), raster::ResultArrays(polys.size()));
      pool->ParallelFor(view.size,
                        [&](std::size_t lo, std::size_t hi,
                            std::size_t worker) {
                          JoinPointRange(view, polys, index, options, lo, hi,
                                         &partials[worker]);
                        });
      for (const auto& partial : partials) result.arrays.AddFrom(partial);
    } else {
      JoinPointRange(view, polys, index, options, 0, view.size,
                     &result.arrays);
    }
  }
  return result;
}

}  // namespace rj
