#include "join/batch_pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace rj::join {

namespace {
// Retry budget for capacity pressure none of our own buffers can relieve
// (a concurrent query on a shared device): one immediate retry, then
// sleeps of 2/4/8/16/32 ms before latching CapacityError.
constexpr int kMaxTransientRetries = 6;
}  // namespace

BatchPipeline::BatchPipeline(gpu::Device* device,
                             const data::PointBlockSource* source,
                             std::vector<std::size_t> blocks,
                             std::vector<std::size_t> columns,
                             BatchPipelineOptions options)
    : device_(device),
      source_(source),
      blocks_(std::move(blocks)),
      columns_(std::move(columns)),
      mode_(Mode::kPull) {
  num_batches_ = blocks_.size();
  // A single batch has nothing to prefetch behind it; stay serialized and
  // keep the working set at one buffer (full_bytes in the admission plan).
  overlap_ = options.overlap_transfers && num_batches_ > 1;
  // Disk-resident sources add the third stage: a reader thread
  // materializes block b+2 while block b+1 uploads and block b draws. The
  // extra slot never holds a device buffer while loading, so the resident
  // VBO count stays ≤ 2 — the same working set the admission plan
  // reserves for plain double buffering.
  disk_staged_ = overlap_ && source_->disk_resident();
  slots_.resize(disk_staged_ ? 3 : (overlap_ ? 2 : 1));
  if (overlap_) {
    thread_ = std::thread([this] { TransferLoopPull(); });
  }
  if (disk_staged_) {
    reader_thread_ = std::thread([this] { ReaderLoopPull(); });
  }
}

BatchPipeline::BatchPipeline(gpu::Device* device, const PointTable* points,
                             std::vector<std::size_t> columns,
                             std::size_t batch_size,
                             BatchPipelineOptions options)
    : device_(device), columns_(std::move(columns)), mode_(Mode::kPull) {
  // The table path is the block path over an in-memory adapter whose
  // blocks are exactly the old fixed-size slices: one core loop, bitwise
  // identical batching.
  owned_source_ = std::make_unique<data::TableBlockSource>(
      points, std::max<std::size_t>(batch_size, 1));
  source_ = owned_source_.get();
  blocks_.resize(source_->num_blocks());
  for (std::size_t b = 0; b < blocks_.size(); ++b) blocks_[b] = b;
  num_batches_ = blocks_.size();
  overlap_ = options.overlap_transfers && num_batches_ > 1;
  slots_.resize(overlap_ ? 2 : 1);
  if (overlap_) {
    thread_ = std::thread([this] { TransferLoopPull(); });
  }
}

BatchPipeline::BatchPipeline(gpu::Device* device,
                             std::vector<std::size_t> columns,
                             BatchPipelineOptions options)
    : device_(device), columns_(std::move(columns)), mode_(Mode::kPush) {
  overlap_ = options.overlap_transfers;
  slots_.resize(overlap_ ? 2 : 1);
  if (overlap_) {
    thread_ = std::thread([this] { TransferLoopPush(); });
  }
}

BatchPipeline::~BatchPipeline() {
  // Destructor cannot propagate the drain status; callers that care call
  // Drain() themselves first (the executor paths all do).
  (void)Drain(nullptr);
}

Result<std::shared_ptr<gpu::Buffer>> BatchPipeline::AllocateWithBackoff(
    const Slot* slot, std::size_t bytes) {
  int transient_retries = 0;
  for (;;) {
    Result<std::shared_ptr<gpu::Buffer>> vbo =
        device_->Allocate(gpu::BufferKind::kVertexBuffer, bytes);
    if (vbo.ok() || vbo.status().code() != StatusCode::kCapacityError) {
      return vbo;
    }
    if (bytes > device_->memory_budget_bytes()) {
      return vbo;  // can never fit, no matter what gets freed
    }
    // Memory pressure while the previously uploaded batch is still
    // resident (double-buffering needs 2× the batch bytes): degrade to
    // serialized — wait for the consumer to draw and free that batch,
    // then retry. Progress beats prefetch.
    {
      MutexLock lock(mutex_);
      if (canceled_) return vbo;
      bool ours_resident = false;
      for (const Slot& s : slots_) {
        if (&s != slot && (s.state == Slot::State::kReady ||
                           s.state == Slot::State::kDrawing)) {
          ours_resident = true;
          break;
        }
      }
      if (ours_resident) {
        // Wait on the free *generation*, not on the neighbor slot reaching
        // kFree: the consumer frees the buffer and may re-queue the slot
        // (kDrawing → kFree → kQueued) in two separate critical sections,
        // so a state predicate can miss the kFree window entirely and wait
        // forever while the consumer blocks on this very upload. The
        // counter only moves forward, so the freed buffer is observed no
        // matter how far the state has moved on.
        const std::uint64_t observed = frees_;
        while (!canceled_ && frees_ <= observed) cv_producer_.Wait(lock);
        if (canceled_) return vbo;
        transient_retries = 0;
        continue;
      }
      // None of our buffers is resident — the neighbor slot is empty or
      // merely queued behind this very upload — so no consumer progress
      // can return memory to us. The pressure is a concurrent query on a
      // shared device: retry with a bounded backoff so a transient
      // neighbor allocation degrades throughput instead of failing the
      // stream.
      if (transient_retries >= kMaxTransientRetries) return vbo;
      ++transient_retries;
    }
    if (transient_retries > 1) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1u << (transient_retries - 1)));
    }
  }
}

Status BatchPipeline::UploadSlot(Slot* slot, const PointTable& table,
                                 std::size_t begin, std::size_t end) {
  Timer timer;
  // Stride from the layout's single definition, so the packed/metered
  // bytes can never drift from what PlanUpload/PlanAdmission reserve.
  const std::size_t stride = UploadStrideBytes(columns_) / sizeof(float);
  slot->staging.resize((end - begin) * stride);
  float* out = slot->staging.data();
  for (std::size_t i = begin; i < end; ++i) {
    *out++ = static_cast<float>(table.xs()[i]);
    *out++ = static_cast<float>(table.ys()[i]);
    for (const std::size_t c : columns_) *out++ = table.attribute(c)[i];
  }

  Status status = Status::OK();
  const std::size_t bytes = slot->staging.size() * sizeof(float);
  if (bytes > 0) {
    Result<std::shared_ptr<gpu::Buffer>> vbo =
        AllocateWithBackoff(slot, bytes);
    if (vbo.ok()) {
      slot->vbo = std::move(vbo).MoveValueUnsafe();
      status = device_->CopyToDevice(slot->vbo.get(), 0,
                                     slot->staging.data(), bytes);
      if (!status.ok()) {
        device_->Free(slot->vbo);
        slot->vbo.reset();
      }
    } else {
      status = vbo.status();
    }
  }
  {
    MutexLock lock(mutex_);
    transfer_seconds_ += timer.ElapsedSeconds();
  }
  return status;
}

Status BatchPipeline::ReadBlockInto(Slot* slot, std::size_t ordinal) {
  Timer timer;
  Result<data::BlockRef> ref =
      source_->ReadBlock(blocks_[ordinal], &slot->table);
  // Transfer time and disk time are separate phases: only disk-resident
  // sources spend wall time here worth reporting (the in-memory adapter's
  // ReadBlock is a pointer assignment).
  if (source_->disk_resident()) {
    MutexLock lock(mutex_);
    disk_seconds_ += timer.ElapsedSeconds();
  }
  if (!ref.ok()) return ref.status();
  const data::BlockRef block = std::move(ref).MoveValueUnsafe();
  slot->rows = block.table;
  slot->begin = block.begin;
  slot->end = block.end;
  return Status::OK();
}

void BatchPipeline::ReaderLoopPull() {
  for (std::size_t pass = 0;; ++pass) {
    for (std::size_t b = 0; b < num_batches_; ++b) {
      Slot& slot = slots_[b % slots_.size()];
      {
        MutexLock lock(mutex_);
        while (!canceled_ && slot.state != Slot::State::kFree) {
          cv_producer_.Wait(lock);
        }
        if (canceled_) return;
        slot.state = Slot::State::kLoading;
      }
      const Status status = ReadBlockInto(&slot, b);
      {
        MutexLock lock(mutex_);
        if (!status.ok()) {
          error_ = status;
          // Both downstream stages must observe the latch: the consumer
          // waits on cv_consumer_, the transfer thread on cv_producer_.
          cv_consumer_.NotifyAll();
          cv_producer_.NotifyAll();
          return;
        }
        slot.batch_index = b;
        slot.state = Slot::State::kLoaded;
        cv_producer_.NotifyAll();  // the transfer thread waits here too
      }
    }
    // Pass complete. Park until the consumer rewinds for the next tile
    // pass (or drains) — the thread and the slots' scratch tables stay
    // warm across passes.
    MutexLock lock(mutex_);
    while (!canceled_ && rewinds_ <= pass) cv_producer_.Wait(lock);
    if (canceled_) return;
  }
}

void BatchPipeline::TransferLoopPull() {
  for (std::size_t pass = 0;; ++pass) {
    for (std::size_t b = 0; b < num_batches_; ++b) {
      Slot& slot = slots_[b % slots_.size()];
      if (disk_staged_) {
        // Three-stage: wait for the reader thread to hand over the loaded
        // block (mutex acquisition orders its rows/begin/end writes before
        // the pack below).
        MutexLock lock(mutex_);
        while (!canceled_ && error_.ok() &&
               !(slot.state == Slot::State::kLoaded &&
                 slot.batch_index == b)) {
          cv_producer_.Wait(lock);
        }
        if (canceled_ || !error_.ok()) return;
      } else {
        {
          MutexLock lock(mutex_);
          while (!canceled_ && slot.state != Slot::State::kFree) {
            cv_producer_.Wait(lock);
          }
          if (canceled_) return;
        }
        const Status status = ReadBlockInto(&slot, b);
        if (!status.ok()) {
          MutexLock lock(mutex_);
          error_ = status;
          cv_consumer_.NotifyAll();
          return;
        }
      }
      const Status status =
          UploadSlot(&slot, *slot.rows, slot.begin, slot.end);
      {
        MutexLock lock(mutex_);
        if (!status.ok()) {
          error_ = status;
          cv_consumer_.NotifyAll();
          cv_producer_.NotifyAll();  // wake the disk reader too
          return;
        }
        slot.batch_index = b;
        slot.state = Slot::State::kReady;
        cv_consumer_.NotifyAll();
      }
    }
    // Pass complete. Park until the consumer rewinds for the next tile
    // pass (or drains) — the thread and the slots' staging buffers stay
    // warm across passes.
    MutexLock lock(mutex_);
    while (!canceled_ && rewinds_ <= pass) cv_producer_.Wait(lock);
    if (canceled_) return;
  }
}

void BatchPipeline::TransferLoopPush() {
  for (std::size_t b = 0;; ++b) {
    Slot* slot = nullptr;
    {
      MutexLock lock(mutex_);
      while (!canceled_ && b >= pushed_ && !flushed_) {
        cv_producer_.Wait(lock);
      }
      if (canceled_) return;
      if (b >= pushed_) return;  // flushed: no further batches will arrive
      slot = &slots_[b % slots_.size()];
      assert(slot->state == Slot::State::kQueued && slot->batch_index == b);
    }
    // The slot's table is private to this thread until the state flips to
    // kReady below: the caller re-uses the slot only two pushes later, and
    // only after this batch was returned for drawing.
    const Status status = UploadSlot(slot, slot->table, 0, slot->table.size());
    {
      MutexLock lock(mutex_);
      if (!status.ok()) {
        error_ = status;
        cv_consumer_.NotifyAll();
        return;
      }
      slot->state = Slot::State::kReady;
      cv_consumer_.NotifyAll();
    }
  }
}

Result<std::optional<BatchPipeline::BatchView>> BatchPipeline::Acquire() {
  assert(mode_ == Mode::kPull);
  // Holding a view starves AllocateWithBackoff when the budget fits only
  // one batch: the prefetcher waits for a free only Release can produce.
  assert(!view_outstanding_ && "Release the previous batch before Acquire");
  if (next_acquire_ >= num_batches_) {
    return std::optional<BatchView>();
  }
  Slot& slot = slots_[next_acquire_ % slots_.size()];
  if (!overlap_) {
    assert(slot.state == Slot::State::kFree && "Release the previous batch");
    RJ_RETURN_NOT_OK(ReadBlockInto(&slot, next_acquire_));
    RJ_RETURN_NOT_OK(UploadSlot(&slot, *slot.rows, slot.begin, slot.end));
    slot.batch_index = next_acquire_;
    slot.state = Slot::State::kReady;
    view_outstanding_ = true;
    const BatchView view{next_acquire_++, slot.begin, slot.end, slot.rows};
    return std::optional<BatchView>(view);
  }
  MutexLock lock(mutex_);
  while (error_.ok() && !(slot.state == Slot::State::kReady &&
                          slot.batch_index == next_acquire_)) {
    cv_consumer_.Wait(lock);
  }
  // A batch that made it to the device is consumable even when a *later*
  // prefetch already failed; the error surfaces when the consumer reaches
  // the batch that never became ready.
  if (slot.state == Slot::State::kReady &&
      slot.batch_index == next_acquire_) {
    const BatchView view{slot.batch_index, slot.begin, slot.end, slot.rows};
    ++next_acquire_;
    view_outstanding_ = true;
    return std::optional<BatchView>(view);
  }
  return error_;
}

void BatchPipeline::Release(const BatchView& view) {
  assert(mode_ == Mode::kPull);
  view_outstanding_ = false;
  Slot& slot = slots_[view.index % slots_.size()];
  // Free before flipping the state: the prefetcher touches the slot only
  // after observing kFree under the mutex.
  if (slot.vbo != nullptr) {
    device_->Free(slot.vbo);
    slot.vbo.reset();
  }
  if (overlap_) {
    MutexLock lock(mutex_);
    slot.state = Slot::State::kFree;
    ++frees_;
    cv_producer_.NotifyAll();
  } else {
    slot.state = Slot::State::kFree;
  }
}

Status BatchPipeline::Rewind() {
  assert(mode_ == Mode::kPull);
  assert(next_acquire_ >= num_batches_ && "Rewind mid-pass");
  assert(!view_outstanding_ && "Release the final batch before Rewind");
  next_acquire_ = 0;
  if (!overlap_) return Status::OK();  // serialized: uploads happen inline
  MutexLock lock(mutex_);
  if (!error_.ok()) return error_;
  ++rewinds_;
  cv_producer_.NotifyAll();
  return Status::OK();
}

Status BatchPipeline::UploadSerialized(const PointTable& batch) {
  assert(mode_ == Mode::kPush && !overlap_);
  Slot& slot = slots_[0];
  RJ_RETURN_NOT_OK(UploadSlot(&slot, batch, 0, batch.size()));
  // Serialized: one buffer in flight, freed right after the metered
  // upload (the draw reads the caller's table) — the pre-pipeline
  // streaming timing, with no batch copy.
  if (slot.vbo != nullptr) {
    device_->Free(slot.vbo);
    slot.vbo.reset();
  }
  // Serialized mode is single-threaded, but pushed_ is mutex-guarded for
  // the overlap path; take the (uncontended) lock to keep one discipline.
  MutexLock lock(mutex_);
  ++pushed_;
  return Status::OK();
}

Result<std::optional<PointTable>> BatchPipeline::Push(PointTable batch) {
  assert(mode_ == Mode::kPush && overlap_);
  ReleaseDrawn();
  std::size_t pushed_now = 0;
  {
    MutexLock lock(mutex_);
    if (!error_.ok()) return error_;
    Slot& slot = slots_[pushed_ % slots_.size()];
    assert(slot.state == Slot::State::kFree);
    slot.table = std::move(batch);
    slot.batch_index = pushed_;
    slot.state = Slot::State::kQueued;
    pushed_now = ++pushed_;
    cv_producer_.NotifyAll();
  }
  if (pushed_now == 1) return std::optional<PointTable>();  // nothing ready yet
  return WaitUploaded(pushed_now - 2);
}

Result<std::optional<PointTable>> BatchPipeline::Flush() {
  assert(mode_ == Mode::kPush);
  ReleaseDrawn();
  std::size_t pushed_now = 0;
  {
    MutexLock lock(mutex_);
    flushed_ = true;
    cv_producer_.NotifyAll();
    if (!error_.ok()) return error_;
    pushed_now = pushed_;
  }
  if (!overlap_ || pushed_now == 0) return std::optional<PointTable>();
  return WaitUploaded(pushed_now - 1);
}

Result<std::optional<PointTable>> BatchPipeline::WaitUploaded(
    std::size_t index) {
  Slot& slot = slots_[index % slots_.size()];
  MutexLock lock(mutex_);
  while (error_.ok() &&
         !(slot.state == Slot::State::kReady && slot.batch_index == index)) {
    cv_consumer_.Wait(lock);
  }
  // Prefer an uploaded batch over a later-latched error (see Acquire).
  if (slot.state == Slot::State::kReady && slot.batch_index == index) {
    slot.state = Slot::State::kDrawing;
    drawn_slot_ = index % slots_.size();
    return std::optional<PointTable>(std::move(slot.table));
  }
  return error_;
}

void BatchPipeline::ReleaseDrawn() {
  if (!drawn_slot_.has_value()) return;
  Slot& slot = slots_[*drawn_slot_];
  drawn_slot_.reset();
  if (slot.vbo != nullptr) {
    device_->Free(slot.vbo);
    slot.vbo.reset();
  }
  slot.table = PointTable();
  MutexLock lock(mutex_);
  slot.state = Slot::State::kFree;
  ++frees_;
  cv_producer_.NotifyAll();
}

Status BatchPipeline::Drain(PhaseTimer* timing) {
  {
    MutexLock lock(mutex_);
    canceled_ = true;
    flushed_ = true;
    cv_producer_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  if (reader_thread_.joinable()) reader_thread_.join();
  // Free whatever is still resident: a prefetched-but-unconsumed batch, or
  // the buffer of a batch the consumer abandoned mid-draw.
  drawn_slot_.reset();
  for (Slot& slot : slots_) {
    if (slot.vbo != nullptr) {
      device_->Free(slot.vbo);
      slot.vbo.reset();
    }
    slot.table = PointTable();
    slot.rows = nullptr;
    slot.state = Slot::State::kFree;
  }
  MutexLock lock(mutex_);
  if (timing != nullptr && !drained_) {
    timing->Add(phase::kTransfer, transfer_seconds_);
    if (disk_seconds_ > 0.0) {
      timing->Add(phase::kDiskRead, disk_seconds_);
    }
  }
  drained_ = true;
  return error_;
}

}  // namespace rj::join
