/// \file streaming_join.h
/// \brief Streaming variants of the raster joins for disk-resident data
/// (§5 "Out-of-Core Processing", §7.7).
///
/// When points arrive in host batches (streamed from the column store),
/// the polygon side of the join must not be repeated per batch: points
/// accumulate into the canvas FBO(s) batch by batch, and the polygon pass
/// runs exactly once at the end. "Thus, a given point data set has to be
/// transferred to the GPU exactly once."
///
/// Usage:
///   StreamingBoundedJoin join(device, &polys, &soup, world, options);
///   RJ_RETURN_NOT_OK(join.Init());
///   while (reader.NextBatch(..., &batch)) RJ_RETURN_NOT_OK(join.AddBatch(batch));
///   RJ_ASSIGN_OR_RETURN(JoinResult result, join.Finish());
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/device.h"
#include "index/grid_index.h"
#include "join/batch_pipeline.h"
#include "join/raster_join_accurate.h"
#include "join/raster_join_bounded.h"
#include "raster/fbo.h"
#include "raster/viewport.h"

namespace rj {

/// Streaming bounded raster join: per-tile FBOs stay resident across
/// batches; Finish() runs the polygon pass per tile and merges.
///
/// With options.overlap_transfers (default) the upload pipeline keeps the
/// current and previous batch resident on the device (2× the largest
/// pushed batch in flight). When the device cannot hold both, the
/// prefetcher waits for the drawn batch's buffer instead of failing
/// (BatchPipeline::AllocateWithBackoff) — throughput degrades to the
/// serialized 1× behavior, results are unchanged.
class StreamingBoundedJoin {
 public:
  /// Neither polys nor soup are copied; both must outlive this object.
  StreamingBoundedJoin(gpu::Device* device, const PolygonSet* polys,
                       const TriangleSoup* soup, const BBox& world,
                       BoundedRasterJoinOptions options);
  ~StreamingBoundedJoin();

  /// Plans the canvas and allocates the tile FBOs (all tiles stay live —
  /// the memory trade for touching each point once).
  Status Init();

  /// Draws one batch of points into every tile. With
  /// options.overlap_transfers (default), batch b's host→device transfer
  /// runs on the pipeline's prefetch thread while batch b-1 draws, so the
  /// draw of `batch` itself completes during the *next* AddBatch/Finish.
  Status AddBatch(const PointTable& batch);

  /// Streams every zone-map-selected block of `source` through AddBatch
  /// (one batch per block; block reads of disk-resident sources are
  /// metered under phase::kDiskRead). Pruning uses the options' filters
  /// and the canvas world, so results equal streaming every block.
  Status AddSource(const data::PointBlockSource& source);

  /// Runs the polygon pass over every tile and returns the result.
  /// The instance cannot be reused afterwards.
  Result<JoinResult> Finish();

  /// Attaches a dataset-version counter (Executor::dataset_version_counter)
  /// that every successful AddBatch bumps: a streaming append changes the
  /// dataset, so result-cache entries keyed on the previous version must
  /// stop matching. Optional; not synchronized — attach before streaming.
  void set_version_counter(std::atomic<std::uint64_t>* counter) {
    version_counter_ = counter;
  }

  std::size_t num_tiles() const { return tiles_.size(); }
  std::uint64_t points_drawn() const { return points_drawn_; }

 private:
  /// Draws one uploaded batch into every tile FBO (the pipeline's
  /// prefetch thread transfers the next batch meanwhile).
  void DrawBatch(const PointTable& batch);

  gpu::Device* device_;
  const PolygonSet* polys_;
  const TriangleSoup* soup_;
  BBox world_;
  BoundedRasterJoinOptions options_;

  std::vector<raster::CanvasTile> tiles_;
  std::vector<std::unique_ptr<raster::Fbo>> fbos_;
  std::unique_ptr<join::BatchPipeline> pipeline_;
  std::atomic<std::uint64_t>* version_counter_ = nullptr;
  JoinResult result_;
  std::uint64_t points_drawn_ = 0;
  bool initialized_ = false;
  bool finished_ = false;
};

/// Streaming accurate raster join: boundary FBO and grid index built once
/// in Init(); AddBatch() classifies points (fast raster path vs exact PIP
/// path); Finish() runs the polygon pass.
class StreamingAccurateJoin {
 public:
  StreamingAccurateJoin(gpu::Device* device, const PolygonSet* polys,
                        const TriangleSoup* soup, const BBox& world,
                        AccurateRasterJoinOptions options);
  ~StreamingAccurateJoin();

  Status Init();
  /// Like StreamingBoundedJoin::AddBatch: the batch's transfer is started
  /// here and its processing happens while the *next* batch transfers.
  Status AddBatch(const PointTable& batch);
  /// See StreamingBoundedJoin::AddSource.
  Status AddSource(const data::PointBlockSource& source);
  Result<JoinResult> Finish();

  /// See StreamingBoundedJoin::set_version_counter.
  void set_version_counter(std::atomic<std::uint64_t>* counter) {
    version_counter_ = counter;
  }

  std::uint64_t boundary_points() const { return boundary_points_; }
  std::uint64_t interior_points() const { return interior_points_; }

 private:
  /// Classifies one uploaded batch (raster fast path vs exact PIP path).
  void ProcessBatch(const PointTable& batch);

  gpu::Device* device_;
  const PolygonSet* polys_;
  const TriangleSoup* soup_;
  BBox world_;
  AccurateRasterJoinOptions options_;

  std::int32_t dim_ = 0;
  std::unique_ptr<raster::Viewport> vp_;
  std::unique_ptr<raster::Fbo> boundary_fbo_;
  std::unique_ptr<raster::Fbo> point_fbo_;
  std::unique_ptr<GridIndex> index_;
  std::unique_ptr<join::BatchPipeline> pipeline_;
  std::atomic<std::uint64_t>* version_counter_ = nullptr;
  JoinResult result_;
  std::uint64_t boundary_points_ = 0;
  std::uint64_t interior_points_ = 0;
  bool initialized_ = false;
  bool finished_ = false;
};

}  // namespace rj
