/// \file batch_pipeline.h
/// \brief Double-buffered host→device upload pipeline for the out-of-core
/// regime (§5, Figures 9/13).
///
/// The paper's out-of-core analysis assumes the host→device transfer of
/// point batch b+1 is hidden behind the draw of batch b. BatchPipeline
/// implements that overlap for the simulated device: a dedicated transfer
/// thread packs the interleaved [x, y, col...] VBO image of the next batch
/// into a persistent staging buffer and uploads it through
/// Device::CopyToDevice — which meters the bytes and spends the simulated
/// PCIe wait — while the caller's draw workers rasterize the current
/// batch. Two device VBO slots bound the look-ahead: at most batches b and
/// b+1 are resident at once, which is why admission plans
/// (Executor::PlanAdmission) reserve 2× the upload stride when overlap is
/// enabled.
///
/// Results are bitwise independent of the overlap: batches are handed to
/// the consumer strictly in order and every draw runs on the consumer's
/// thread(s) exactly as in the serialized path — the pipeline only moves
/// the transfer wait off the critical path. `overlap_transfers = false`
/// reproduces today's serialized transfer→draw timing (one buffer in
/// flight, uploads inline), which the paper-shape breakdown benches use as
/// the comparison baseline.
///
/// Two modes:
///  * pull (block scan): the pipeline streams the selected blocks of a
///    data::PointBlockSource — one device batch per block — and the
///    consumer loops Acquire()/Release() until Acquire returns nullopt,
///    then calls Rewind() to re-stream every block for the next tile pass
///    (the threads and staging buffers survive across passes) or Drain()
///    when done. The PointTable convenience ctor wraps the table in an
///    in-memory adapter (data::TableBlockSource) whose blocks are exactly
///    the old fixed-size slices, so in-memory scans are unchanged.
///    When the source is disk-resident and transfers overlap, the scan
///    runs three-staged: a reader thread materializes block b+2 from disk
///    (metered under phase::kDiskRead) while the transfer thread packs and
///    uploads block b+1 and the consumer draws block b. Three slots cover
///    the three stages, but a loading slot holds no device buffer yet, so
///    at most two VBOs are ever resident — the same 2× stride the
///    admission plan reserves for plain double buffering.
///  * push (streaming): the caller feeds externally-sized batches
///    (Streaming*Join::AddBatch). Push(b) starts the upload of batch b and
///    returns batch b-1 — whose upload has completed — for drawing;
///    Flush() returns the final batch, then Drain() joins the thread.
///
/// Error handling: the first failure (device allocation, upload) is
/// latched; batches that already made it to the device are still handed
/// out in order, and the error surfaces from Acquire/Push/Flush when the
/// consumer reaches the batch that never became ready (and from Drain).
/// Memory pressure is not an error: when the budget cannot hold two
/// batches, the prefetcher waits for the in-flight batch to be drawn and
/// freed before allocating (AllocateWithBackoff) — double-buffering
/// degrades to serialized instead of failing a query that fits one batch.
/// The destructor always cancels and joins the transfer thread and frees
/// any slot buffers, so an error — or a consumer that stops mid-stream —
/// can never leak the thread or device memory.
///
/// Transfer time accounting: the wall time of pack + upload is accumulated
/// internally (the PhaseTimer API is not thread-safe) and folded into
/// phase::kTransfer by Drain(). With overlap on, that phase reports the
/// time *spent* transferring, which no longer adds to end-to-end latency —
/// exactly the paper's "transfer is hidden" claim the Fig. 9 bench checks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "data/point_block_source.h"
#include "data/point_table.h"
#include "gpu/device.h"
#include "join/join_common.h"

namespace rj::join {

struct BatchPipelineOptions {
  /// Prefetch batch b+1 on the transfer thread while batch b draws. Off
  /// reproduces the serialized transfer→draw loop (and halves the device
  /// working set: one buffer in flight instead of two).
  bool overlap_transfers = true;
};

class BatchPipeline {
 public:
  /// One uploaded batch, resident on the device until Release()d. The
  /// batch's rows are rows [begin, end) of `*rows`: for in-memory table
  /// scans `rows` is the scanned table itself (begin/end are global row
  /// indices, exactly the pre-block contract); for disk sources `rows` is
  /// a pipeline-owned scratch holding just this block. Valid until
  /// Release().
  struct BatchView {
    std::size_t index = 0;  ///< batch ordinal (ascending)
    std::size_t begin = 0;  ///< first point row (pull mode)
    std::size_t end = 0;    ///< one past the last point row (pull mode)
    const PointTable* rows = nullptr;  ///< table the rows live in
  };

  /// Pull mode over a block source: streams blocks `blocks` (ordinals into
  /// `source`, ascending — the zone-map-selected scan list) as one device
  /// batch each. Neither is copied; `source` must outlive the pipeline.
  /// Starts the transfer thread when overlap is enabled and there is more
  /// than one batch, plus the disk reader thread for disk-resident
  /// sources.
  BatchPipeline(gpu::Device* device, const data::PointBlockSource* source,
                std::vector<std::size_t> blocks,
                std::vector<std::size_t> columns,
                BatchPipelineOptions options);

  /// Pull mode over a resident table: scans `points` (not copied; must
  /// outlive the pipeline) in `batch_size`-point slices via an internal
  /// in-memory adapter. BatchView row ranges are global indices into
  /// `*points`.
  BatchPipeline(gpu::Device* device, const PointTable* points,
                std::vector<std::size_t> columns, std::size_t batch_size,
                BatchPipelineOptions options);

  /// Push mode: batch sizes are unknown up front; the caller feeds them
  /// through Push()/Flush().
  BatchPipeline(gpu::Device* device, std::vector<std::size_t> columns,
                BatchPipelineOptions options);

  /// Cancels and joins the transfer thread, freeing any slot buffers.
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Planned batch count (pull mode).
  std::size_t num_batches() const { return num_batches_; }

  /// Pull mode: blocks until the next batch is resident on the device and
  /// returns its row range; nullopt once every batch has been consumed.
  /// The caller must Release() the previous batch before the next
  /// Acquire(): under memory pressure the prefetcher waits for that free
  /// (AllocateWithBackoff), so holding a view while acquiring the next
  /// batch would deadlock when the budget fits only one batch. Asserted.
  [[nodiscard]] Result<std::optional<BatchView>> Acquire()
      RJ_EXCLUDES(mutex_);

  /// Pull mode: marks the batch drawn; its slot becomes available to the
  /// prefetcher.
  void Release(const BatchView& view) RJ_EXCLUDES(mutex_);

  /// Pull mode: restarts the scan from batch 0 for the next tile pass,
  /// once every batch of the current pass has been consumed and released.
  /// Keeps the transfer thread and the slots' staging buffers alive —
  /// multi-tile joins re-stream the points without paying a thread spawn
  /// and two batch-sized staging allocations per tile. Returns the
  /// latched pipeline error, if any.
  Status Rewind() RJ_EXCLUDES(mutex_);

  /// Whether this pipeline prefetches on a transfer thread. Push-mode
  /// callers branch on this: overlapping pipelines take Push() (which
  /// must retain a copy of the batch across calls), serialized ones take
  /// UploadSerialized() and draw the caller's own table copy-free.
  bool overlapping() const { return overlap_; }

  /// Push mode, overlapping pipelines only: retains a copy of `batch`,
  /// starts its upload, and returns the *previous* batch (upload
  /// complete, ready to draw) — nullopt on the first push.
  [[nodiscard]] Result<std::optional<PointTable>> Push(PointTable batch)
      RJ_EXCLUDES(mutex_);

  /// Push mode, serialized pipelines only: packs and uploads `batch`
  /// inline (one buffer in flight, freed after the metered upload). The
  /// caller draws `batch` itself afterwards — no copy is made.
  Status UploadSerialized(const PointTable& batch) RJ_EXCLUDES(mutex_);

  /// Push mode: returns the final batch once its upload completes
  /// (nullopt when nothing is pending or the pipeline is serialized).
  [[nodiscard]] Result<std::optional<PointTable>> Flush()
      RJ_EXCLUDES(mutex_);

  /// Joins the transfer thread, folds the accumulated transfer wall time
  /// into `timing` under phase::kTransfer (once; pass nullptr to skip),
  /// and returns the first pipeline error. Idempotent.
  Status Drain(PhaseTimer* timing) RJ_EXCLUDES(mutex_);

 private:
  enum class Mode { kPull, kPush };

  struct Slot {
    /// Persistent staging buffer: resized per batch but never reallocated
    /// once it has reached the steady-state batch size (the same
    /// transient-allocation fix FboPool applies to canvases).
    std::vector<float> staging;
    std::shared_ptr<gpu::Buffer> vbo;
    /// Push mode: retained copy of the pushed batch. Pull mode over a
    /// disk source: the scratch the block is materialized into (persists
    /// across passes, like `staging`).
    PointTable table;
    const PointTable* rows = nullptr;  ///< pull: table the rows live in
    std::size_t batch_index = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    enum class State {
      kFree,     ///< available to the reader / prefetcher / the next Push
      kLoading,  ///< pull, disk: reader thread materializing the block
      kLoaded,   ///< pull, disk: rows resident in host RAM, upload pending
      kQueued,   ///< push mode: table set, awaiting upload
      kReady,    ///< upload complete, awaiting the consumer
      kDrawing,  ///< push mode: returned to the caller, draw in progress
    } state = State::kFree;
  };

  /// Allocates a slot's device buffer, backing off under memory pressure:
  /// when the budget cannot hold this batch *and* the previously uploaded
  /// one, waits for the consumer to draw and free that batch instead of
  /// failing — double-buffering degrades to serialized, it never turns a
  /// query that fits one batch into an error.
  Result<std::shared_ptr<gpu::Buffer>> AllocateWithBackoff(const Slot* slot,
                                                           std::size_t bytes)
      RJ_EXCLUDES(mutex_);

  /// Packs rows [begin, end) of `table` and uploads them, accumulating the
  /// elapsed wall time into transfer_seconds_. Runs on the transfer thread
  /// (overlap) or the caller (serialized).
  Status UploadSlot(Slot* slot, const PointTable& table, std::size_t begin,
                    std::size_t end) RJ_EXCLUDES(mutex_);

  /// Materializes block ordinal `ordinal` of the scan list into `slot`
  /// (setting rows/begin/end), accumulating disk wall time for
  /// disk-resident sources. Runs on the reader thread (three-stage), the
  /// transfer thread (two-stage), or the caller (serialized).
  Status ReadBlockInto(Slot* slot, std::size_t ordinal) RJ_EXCLUDES(mutex_);

  void TransferLoopPull() RJ_EXCLUDES(mutex_);
  void TransferLoopPush() RJ_EXCLUDES(mutex_);

  /// Disk stage of the three-stage pull pipeline: materializes blocks from
  /// the source into free slots ahead of the transfer thread.
  void ReaderLoopPull() RJ_EXCLUDES(mutex_);

  /// Blocks until batch `index`'s upload completes and moves its table out
  /// (push mode).
  Result<std::optional<PointTable>> WaitUploaded(std::size_t index)
      RJ_EXCLUDES(mutex_);

  /// Frees the buffer of the batch previously returned for drawing (its
  /// draw finished: the caller came back for the next batch). Push mode.
  void ReleaseDrawn() RJ_EXCLUDES(mutex_);

  gpu::Device* device_;
  const data::PointBlockSource* source_ = nullptr;  ///< pull mode source
  std::vector<std::size_t> blocks_;  ///< pull: scan list (block ordinals)
  /// Backing adapter for the PointTable convenience ctor; source_ points
  /// at it.
  std::unique_ptr<data::TableBlockSource> owned_source_;
  std::vector<std::size_t> columns_;
  std::size_t num_batches_ = 0;
  Mode mode_;
  bool overlap_ = false;
  bool disk_staged_ = false;  ///< three-stage: dedicated disk reader thread

  /// 3 disk-staged, 2 with overlap, 1 serialized. NOT guarded by mutex_ —
  /// slot *payloads* (staging/vbo/table/rows/begin/end) move between
  /// threads by ownership handoff: exactly one stage owns a slot at a time,
  /// determined by its `state`, and every state transition happens under
  /// mutex_ (overlap mode), so the mutex acquisition orders the previous
  /// owner's payload writes before the next owner's reads. Serialized mode
  /// has a single thread and touches slots lock-free. The analysis cannot
  /// express per-element ownership, so the protocol is enforced by the
  /// asserts in the .cc and TSan instead.
  std::vector<Slot> slots_;
  std::size_t next_acquire_ = 0;              ///< pull consumer cursor
  bool view_outstanding_ = false;  ///< pull consumer-private: unreleased view
  std::size_t pushed_ RJ_GUARDED_BY(mutex_) = 0;  ///< push producer cursor
  std::optional<std::size_t> drawn_slot_;     ///< push: slot pending free
  /// Free generation: bumped (under mutex_) whenever the consumer returns
  /// a slot's device buffer (Release / ReleaseDrawn). AllocateWithBackoff
  /// waits for this to advance rather than for a slot to *be* kFree — the
  /// consumer may re-queue the slot before the waiter re-acquires the
  /// mutex, but a counter advance can never be un-observed.
  std::uint64_t frees_ RJ_GUARDED_BY(mutex_) = 0;
  /// Pull: completed-pass rewind count.
  std::size_t rewinds_ RJ_GUARDED_BY(mutex_) = 0;
  bool flushed_ RJ_GUARDED_BY(mutex_) = false;
  bool canceled_ RJ_GUARDED_BY(mutex_) = false;
  bool drained_ RJ_GUARDED_BY(mutex_) = false;

  mutable Mutex mutex_;
  CondVar cv_producer_;  ///< transfer thread: slot freed/queued
  CondVar cv_consumer_;  ///< consumer: upload finished/error
  Status error_ RJ_GUARDED_BY(mutex_) = Status::OK();
  double transfer_seconds_ RJ_GUARDED_BY(mutex_) = 0.0;
  /// Accumulated block read wall time.
  double disk_seconds_ RJ_GUARDED_BY(mutex_) = 0.0;

  std::thread thread_;
  std::thread reader_thread_;  ///< disk-staged pull only
};

}  // namespace rj::join
