/// \file fused_join.h
/// \brief Fused multi-query raster joins: one point scan serving a group of
/// compatible queries.
///
/// The paper's raster joins are bottlenecked by the point pass — upload +
/// rasterization touch every point, while the polygon pass touches only the
/// (much smaller) polygon set. N compatible concurrent queries therefore
/// waste N−1 scans. A *fusion group* shares the scan: one BatchPipeline
/// upload, one vertex stage per point, and per-member fragment accumulation
/// targets (raster::DrawPointsMulti), followed by a per-member polygon pass
/// over the member's own FBO.
///
/// Compatibility is structural: members must agree on everything that shapes
/// the shared scan — the dataset, the variant, and the canvas (ε for
/// bounded, canvas_dim for accurate). Aggregates, weight columns, filters,
/// and §5 range requests are free per member.
///
/// Determinism contract: every member's arrays / ranges / exported FBO are
/// bitwise identical to running that member alone through the unfused join
/// with any batch size. Per-member FBOs are disjoint, the shared transform
/// is a pure function of the point, and per-pixel blend order within one
/// member is the sequential point order regardless of batch boundaries
/// (batches are contiguous ascending ranges — the same argument
/// docs/SERVICE.md makes for the unfused pipeline).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "agg/result_range.h"
#include "gpu/device.h"
#include "join/join_common.h"
#include "raster/fbo.h"
#include "raster/viewport.h"
#include "triangulate/triangulation.h"

namespace rj {

/// The per-member half of a fusion group: what may differ across members.
struct FusedMemberSpec {
  /// Aggregated attribute column (npos = COUNT-only member).
  std::size_t weight_column = PointTable::npos;

  /// Filter constraints evaluated in the shared vertex stage.
  FilterSet filters;

  /// Compute §5 result ranges for this member (bounded variant only;
  /// requires a single-tile canvas).
  bool compute_result_ranges = false;

  /// Export this member's post-Step-I point FBO (bounded variant only;
  /// single-tile canvas). The sharded gather hook, exactly as in
  /// BoundedRasterJoin.
  bool export_point_fbo = false;
};

/// The group-wide half: what every member must share.
struct FusedJoinOptions {
  /// Hausdorff bound ε (bounded variant; defines the shared canvas).
  double epsilon = 10.0;

  /// Canvas resolution (accurate variant; 0 = device max_fbo_dim).
  std::int32_t canvas_dim = 0;

  /// Grid-index resolution for boundary points (accurate variant).
  std::int32_t index_resolution = 1024;

  /// Maximum points per device batch (0 = derive from memory budget).
  std::size_t batch_size = 0;

  /// Prefetch batch b+1 while batch b draws (join::BatchPipeline).
  bool overlap_transfers = true;
};

/// What one fused execution produces: slot i belongs to the i-th member.
/// `timing` is group-level — the scan is shared, so per-member phase
/// attribution would be fiction; callers replicate it across members.
struct FusedJoinOutput {
  std::vector<raster::ResultArrays> arrays;
  std::vector<ResultRanges> ranges;  ///< empty unless the member asked
  std::vector<std::optional<raster::Fbo>> point_fbos;
  PhaseTimer timing;
};

/// Columns of the fused upload: the union of every member's UploadColumns,
/// ascending. The single definition shared by the fused joins and the
/// Executor's fused admission plan — the grant must cover exactly the
/// stride the pipeline ships (same contract as TriangleVboBytes).
std::vector<std::size_t> FusedUploadColumns(
    const std::vector<FusedMemberSpec>& members);

/// Bounded raster join (§4.1–4.2) for a fusion group: one triangle-VBO
/// upload, one BatchPipeline scan, one DrawPointsMulti per tile/batch, then
/// a per-member DrawPolygons + optional §5 ranges.
Result<FusedJoinOutput> FusedBoundedRasterJoin(
    gpu::Device* device, const PointTable& points, const PolygonSet& polys,
    const TriangleSoup& soup, const BBox& world,
    const FusedJoinOptions& options,
    const std::vector<FusedMemberSpec>& members);

/// Accurate raster join (§4.3) for a fusion group: the boundary FBO and
/// grid index are member-independent and built once; each boundary point's
/// containing polygons are resolved once and accumulated into every
/// matching member. PIP tests are metered once per boundary point (not per
/// member) — shared work is the point of fusion; the diagnostic counter
/// reflects tests actually executed.
Result<FusedJoinOutput> FusedAccurateRasterJoin(
    gpu::Device* device, const PointTable& points, const PolygonSet& polys,
    const TriangleSoup& soup, const BBox& world,
    const FusedJoinOptions& options,
    const std::vector<FusedMemberSpec>& members);

}  // namespace rj
