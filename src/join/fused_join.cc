#include "join/fused_join.h"

#include <algorithm>
#include <cmath>

#include "geometry/pip.h"
#include "index/grid_index.h"
#include "join/batch_pipeline.h"
#include "raster/fbo_pool.h"
#include "raster/pipeline.h"

namespace rj {

namespace {

Status ValidateMembers(const PointTable& points, const PolygonSet& polys,
                       const std::vector<FusedMemberSpec>& members) {
  if (members.empty()) {
    return Status::InvalidArgument("fusion group is empty");
  }
  RJ_RETURN_NOT_OK(ValidatePolygonIds(polys));
  for (const FusedMemberSpec& member : members) {
    RJ_RETURN_NOT_OK(ValidateWeightColumn(points, member.weight_column));
    RJ_RETURN_NOT_OK(ValidateFilters(points, member.filters));
  }
  return Status::OK();
}

}  // namespace

std::vector<std::size_t> FusedUploadColumns(
    const std::vector<FusedMemberSpec>& members) {
  std::vector<std::size_t> columns;
  for (const FusedMemberSpec& member : members) {
    const std::vector<std::size_t> own =
        UploadColumns(member.filters, member.weight_column);
    columns.insert(columns.end(), own.begin(), own.end());
  }
  // Canonical ascending order: the union is a set, and a deterministic
  // column order keeps the upload stride (and thus batch planning and the
  // transfer meter) independent of member order within the group.
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return columns;
}

Result<FusedJoinOutput> FusedBoundedRasterJoin(
    gpu::Device* device, const PointTable& points, const PolygonSet& polys,
    const TriangleSoup& soup, const BBox& world,
    const FusedJoinOptions& options,
    const std::vector<FusedMemberSpec>& members) {
  RJ_RETURN_NOT_OK(ValidateMembers(points, polys, members));
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::size_t m = members.size();

  FusedJoinOutput out;
  out.arrays.assign(m, raster::ResultArrays(polys.size()));
  out.ranges.resize(m);
  out.point_fbos.resize(m);

  RJ_ASSIGN_OR_RETURN(
      std::vector<raster::CanvasTile> tiles,
      raster::PlanCanvas(world, options.epsilon, device->options().max_fbo_dim));
  for (const FusedMemberSpec& member : members) {
    if ((member.compute_result_ranges || member.export_point_fbo) &&
        tiles.size() != 1) {
      return Status::NotImplemented(
          "result ranges / point-FBO export require a single-tile canvas "
          "(reduce epsilon resolution or raise max_fbo_dim)");
    }
  }

  const std::vector<std::size_t> columns = FusedUploadColumns(members);
  const std::size_t bytes_per_point = UploadStrideBytes(columns);

  bool overlap = options.overlap_transfers;
  std::size_t batch = options.batch_size;
  if (batch == 0) {
    const UploadPlan plan = PlanUpload(device->bytes_free(), bytes_per_point,
                                       points.size(), overlap);
    batch = plan.batch_size;
    overlap = plan.overlap_transfers;
  }

  // One triangle VBO for the whole group: Step II reads the same
  // triangulation for every member (see BoundedRasterJoin on why it ships
  // exactly once per execution).
  RJ_RETURN_NOT_OK(UploadTriangleVbo(device, soup.size(), &out.timing));

  join::BatchPipeline pipeline(device, &points, columns, batch, {overlap});

  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const raster::CanvasTile& tile = tiles[t];
    raster::Viewport vp(tile.world, tile.width, tile.height);

    // One pooled canvas per member; targets alias them for the multi draw.
    std::vector<raster::FboLease> leases;
    leases.reserve(m);
    std::vector<raster::MultiTarget> targets(m);
    for (std::size_t i = 0; i < m; ++i) {
      leases.push_back(
          raster::FboPool::Shared().Acquire(tile.width, tile.height));
      targets[i].filters = &members[i].filters;
      targets[i].weight_column = members[i].weight_column;
      targets[i].fbo = leases.back().get();
    }

    // --- Step I: one shared point scan feeding every member. -------------
    if (t > 0) RJ_RETURN_NOT_OK(pipeline.Rewind());
    for (;;) {
      RJ_ASSIGN_OR_RETURN(std::optional<join::BatchPipeline::BatchView> view,
                          pipeline.Acquire());
      if (!view.has_value()) break;
      {
        ScopedPhase sp(&out.timing, phase::kProcessing);
        PointTable slice = points.Slice(view->begin, view->end);
        raster::DrawPointsMulti(vp, slice, targets, &device->counters(),
                                &device->pool());
      }
      pipeline.Release(*view);
      device->counters().AddBatches(1);
    }

    // --- Step II per member: polygons over the member's own canvas. ------
    for (std::size_t i = 0; i < m; ++i) {
      const raster::Fbo& point_fbo = *targets[i].fbo;
      if (members[i].export_point_fbo) {
        out.point_fbos[i].emplace(point_fbo);
      }
      {
        ScopedPhase sp(&out.timing, phase::kProcessing);
        raster::ResultArrays tile_result(polys.size());
        raster::DrawPolygons(vp, soup, point_fbo, /*boundary_fbo=*/nullptr,
                             &tile_result, &device->counters(),
                             &device->pool());
        out.arrays[i].AddFrom(tile_result);
      }
      device->counters().AddRenderPasses(1);

      if (members[i].compute_result_ranges) {
        ScopedPhase sp(&out.timing, phase::kProcessing);
        RJ_ASSIGN_OR_RETURN(
            out.ranges[i],
            ComputeResultRanges(vp, polys, soup, point_fbo,
                                FinalizeAggregate(AggregateKind::kCount,
                                                  out.arrays[i]),
                                &device->counters(), &device->pool()));
      }
    }
  }
  RJ_RETURN_NOT_OK(pipeline.Drain(&out.timing));
  return out;
}

Result<FusedJoinOutput> FusedAccurateRasterJoin(
    gpu::Device* device, const PointTable& points, const PolygonSet& polys,
    const TriangleSoup& soup, const BBox& world,
    const FusedJoinOptions& options,
    const std::vector<FusedMemberSpec>& members) {
  RJ_RETURN_NOT_OK(ValidateMembers(points, polys, members));
  for (const FusedMemberSpec& member : members) {
    if (member.compute_result_ranges || member.export_point_fbo) {
      return Status::NotImplemented(
          "result ranges / point-FBO export are bounded-variant features");
    }
  }
  const std::size_t m = members.size();

  const std::int32_t dim = options.canvas_dim > 0
                               ? options.canvas_dim
                               : device->options().max_fbo_dim;
  if (dim <= 0) return Status::InvalidArgument("canvas dimension must be > 0");
  if (world.IsEmpty() || world.Width() <= 0 || world.Height() <= 0) {
    return Status::InvalidArgument("world extent is empty");
  }

  FusedJoinOutput out;
  out.arrays.assign(m, raster::ResultArrays(polys.size()));
  out.ranges.resize(m);
  out.point_fbos.resize(m);

  raster::Viewport vp(world, dim, dim);

  // The boundary FBO and grid index depend only on the polygons and the
  // canvas — member-independent, built once for the group.
  raster::FboLease boundary_lease = raster::FboPool::Shared().Acquire(dim, dim);
  raster::Fbo& boundary_fbo = *boundary_lease;
  {
    ScopedPhase sp(&out.timing, phase::kProcessing);
    raster::DrawBoundaries(vp, polys, /*conservative=*/true, &boundary_fbo,
                           &device->counters(), &device->pool());
  }
  RJ_ASSIGN_OR_RETURN(
      GridIndex index,
      [&]() {
        Timer t;
        auto r = GridIndex::Build(polys, world, options.index_resolution,
                                  GridAssignMode::kMbr);
        out.timing.Add(phase::kIndexBuild, t.ElapsedSeconds());
        return r;
      }());

  std::vector<raster::FboLease> point_leases;
  point_leases.reserve(m);
  std::vector<const std::vector<float>*> weights(m, nullptr);
  for (std::size_t i = 0; i < m; ++i) {
    point_leases.push_back(raster::FboPool::Shared().Acquire(dim, dim));
    if (members[i].weight_column != PointTable::npos) {
      weights[i] = &points.attribute(members[i].weight_column);
    }
  }

  const std::vector<std::size_t> columns = FusedUploadColumns(members);
  const std::size_t bytes_per_point = UploadStrideBytes(columns);
  bool overlap = options.overlap_transfers;
  std::size_t batch = options.batch_size;
  if (batch == 0) {
    const UploadPlan plan = PlanUpload(device->bytes_free(), bytes_per_point,
                                       points.size(), overlap);
    batch = plan.batch_size;
    overlap = plan.overlap_transfers;
  }

  std::uint64_t worker_pips = 0;
  const std::size_t pip_before = GetThreadPipTestCount();

  // --- Step 2: one shared scan (Procedure AccuratePoints, fused). --------
  join::BatchPipeline upload_pipeline(device, &points, columns, batch,
                                      {overlap});
  for (;;) {
    RJ_ASSIGN_OR_RETURN(std::optional<join::BatchPipeline::BatchView> view,
                        upload_pipeline.Acquire());
    if (!view.has_value()) break;
    const std::size_t begin = view->begin;
    const std::size_t end = view->end;

    ScopedPhase sp(&out.timing, phase::kProcessing);

    // Fused AccuratePoints for point i: the member-independent work —
    // transform, clip, boundary classification, and (for boundary pixels)
    // the candidate PIP resolution — runs once; each member whose filters
    // match then accumulates exactly what its solo run would. `contained`
    // holds the containing polygon ids in candidate order, so per-member
    // accumulation order equals the unfused candidate loop's order.
    const auto process_point = [&](std::size_t i,
                                   std::vector<raster::ResultArrays>* accs,
                                   const auto& emit_interior,
                                   std::vector<unsigned char>* match,
                                   std::vector<std::size_t>* contained) {
      bool any = false;
      for (std::size_t t = 0; t < m; ++t) {
        (*match)[t] = members[t].filters.Matches(points, i) ? 1 : 0;
        any |= (*match)[t] != 0;
      }
      if (!any) return;

      const Point p = points.At(i);
      const Point s = vp.ToScreen(p);
      const auto px = static_cast<std::int32_t>(std::floor(s.x));
      const auto py = static_cast<std::int32_t>(std::floor(s.y));
      if (px < 0 || px >= dim || py < 0 || py >= dim) return;  // clipped

      if (raster::IsBoundaryPixel(boundary_fbo, px, py)) {
        contained->clear();
        auto [cand_begin, cand_end] = index.Candidates(p);
        for (const std::int32_t* c = cand_begin; c != cand_end; ++c) {
          const Polygon& poly = polys[static_cast<std::size_t>(*c)];
          if (!poly.Contains(p)) continue;
          contained->push_back(static_cast<std::size_t>(poly.id()));
        }
        for (std::size_t t = 0; t < m; ++t) {
          if ((*match)[t] == 0) continue;
          const bool has_weight = weights[t] != nullptr;
          const float w = has_weight ? (*weights[t])[i] : 0.0f;
          raster::ResultArrays& acc = (*accs)[t];
          for (const std::size_t id : *contained) {
            acc.count[id] += 1.0;
            if (has_weight) {
              acc.sum[id] += w;
              acc.min[id] = std::min(acc.min[id], static_cast<double>(w));
              acc.max[id] = std::max(acc.max[id], static_cast<double>(w));
            }
          }
        }
        return;
      }
      for (std::size_t t = 0; t < m; ++t) {
        if ((*match)[t] == 0) continue;
        const float w = weights[t] != nullptr ? (*weights[t])[i] : 0.0f;
        emit_interior(t, raster::PointFrag{px, py, w});
      }
    };

    ThreadPool& pool = device->pool();
    const std::size_t batch_n = end - begin;
    const std::size_t num_chunks = pool.NumChunks(batch_n);
    if (num_chunks <= 1) {
      std::vector<unsigned char> match(m, 0);
      std::vector<std::size_t> contained;
      for (std::size_t i = begin; i < end; ++i) {
        process_point(
            i, &out.arrays,
            [&](std::size_t t, const raster::PointFrag& f) {
              raster::BlendPointFrag(point_leases[t].get(), f,
                                     weights[t] != nullptr);
            },
            &match, &contained);
      }
    } else {
      // Tiled-parallel fused AccuratePoints: per chunk, a private
      // ResultArrays per member plus one interior-fragment binner per
      // member; both merged in ascending chunk order — each member's
      // accumulation sequence is exactly its solo sequential order.
      std::vector<raster::BandBinner> binners;
      binners.reserve(m);
      for (std::size_t t = 0; t < m; ++t) {
        binners.emplace_back(num_chunks, dim, /*expected_frags=*/batch_n);
      }
      std::vector<std::vector<raster::ResultArrays>> partials(
          num_chunks,
          std::vector<raster::ResultArrays>(
              m, raster::ResultArrays(polys.size())));
      std::vector<std::uint64_t> pips_per_chunk(num_chunks, 0);
      pool.ParallelFor(batch_n, [&](std::size_t c_begin, std::size_t c_end,
                                    std::size_t chunk) {
        const std::size_t chunk_pips_before = GetThreadPipTestCount();
        std::vector<unsigned char> match(m, 0);
        std::vector<std::size_t> contained;
        for (std::size_t k = c_begin; k < c_end; ++k) {
          process_point(
              begin + k, &partials[chunk],
              [&](std::size_t t, const raster::PointFrag& f) {
                binners[t].Push(chunk, f);
              },
              &match, &contained);
        }
        pips_per_chunk[chunk] = GetThreadPipTestCount() - chunk_pips_before;
      });
      pool.ParallelFor(
          binners[0].num_bands(),
          [&](std::size_t band_begin, std::size_t band_end, std::size_t) {
            for (std::size_t t = 0; t < m; ++t) {
              binners[t].ReplayBands(
                  band_begin, band_end, [&](const raster::PointFrag& f) {
                    raster::BlendPointFrag(point_leases[t].get(), f,
                                           weights[t] != nullptr);
                  });
            }
          });
      for (std::size_t c = 0; c < num_chunks; ++c) {
        for (std::size_t t = 0; t < m; ++t) {
          out.arrays[t].AddFrom(partials[c][t]);
        }
        worker_pips += pips_per_chunk[c];
      }
    }
    upload_pipeline.Release(*view);
    device->counters().AddBatches(1);
  }
  RJ_RETURN_NOT_OK(upload_pipeline.Drain(&out.timing));

  // --- Step 3 per member: polygons over the member's canvas, skipping
  // boundary fragments (those points were resolved exactly above). --------
  for (std::size_t t = 0; t < m; ++t) {
    ScopedPhase sp(&out.timing, phase::kProcessing);
    raster::ResultArrays poly_pass(polys.size());
    raster::DrawPolygons(vp, soup, *point_leases[t], &boundary_fbo,
                         &poly_pass, &device->counters(), &device->pool());
    out.arrays[t].AddFrom(poly_pass);
    device->counters().AddRenderPasses(1);
  }

  device->counters().AddPipTests((GetThreadPipTestCount() - pip_before) +
                                 worker_pips);
  return out;
}

}  // namespace rj
