#include "join/raster_join_bounded.h"

#include <algorithm>

#include "raster/fbo_pool.h"

namespace rj {

namespace {

/// Uploads one batch of points to the device VBO, metering transfer time.
/// Only the columns the query references are shipped (§5: "the data
/// corresponding to the attributes over which constraints are imposed is
/// also transferred to the GPU").
Status UploadBatch(gpu::Device* device, gpu::Buffer* vbo,
                   const PointTable& points, std::size_t begin,
                   std::size_t end, const std::vector<std::size_t>& columns) {
  // Layout: interleaved [x, y, col0, col1, ...] float32 per point.
  const std::size_t stride = 2 + columns.size();
  std::vector<float> staging((end - begin) * stride);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t base = (i - begin) * stride;
    staging[base + 0] = static_cast<float>(points.xs()[i]);
    staging[base + 1] = static_cast<float>(points.ys()[i]);
    for (std::size_t c = 0; c < columns.size(); ++c) {
      staging[base + 2 + c] = points.attribute(columns[c])[i];
    }
  }
  return device->CopyToDevice(vbo, 0, staging.data(),
                              staging.size() * sizeof(float));
}

}  // namespace

Result<JoinResult> BoundedRasterJoin(gpu::Device* device,
                                     const PointTable& points,
                                     const PolygonSet& polys,
                                     const TriangleSoup& soup,
                                     const BBox& world,
                                     const BoundedRasterJoinOptions& options,
                                     BoundedRasterJoinStats* stats,
                                     ResultRanges* ranges_out) {
  RJ_RETURN_NOT_OK(ValidatePolygonIds(polys));
  RJ_RETURN_NOT_OK(ValidateWeightColumn(points, options.weight_column));
  RJ_RETURN_NOT_OK(ValidateFilters(points, options.filters));
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }

  JoinResult result(polys.size());

  // Plan the canvas tiling for the requested ε (Fig. 5).
  RJ_ASSIGN_OR_RETURN(
      std::vector<raster::CanvasTile> tiles,
      raster::PlanCanvas(world, options.epsilon, device->options().max_fbo_dim));
  if (options.compute_result_ranges) {
    if (ranges_out == nullptr) {
      return Status::InvalidArgument(
          "compute_result_ranges requires ranges_out");
    }
    if (tiles.size() != 1) {
      return Status::NotImplemented(
          "result ranges require a single-tile canvas (reduce epsilon "
          "resolution or raise max_fbo_dim)");
    }
  }

  // Columns shipped to the device: filters' columns plus the aggregated one.
  // (The pipeline reads from the host table directly; the upload is for
  // transfer-cost fidelity — see DESIGN.md §2.)
  const std::vector<std::size_t> columns =
      UploadColumns(options.filters, options.weight_column);
  const std::size_t bytes_per_point = (2 + columns.size()) * sizeof(float);

  // Batch planning: points are transferred exactly once per tile pass set.
  std::size_t batch = options.batch_size;
  if (batch == 0) {
    const std::size_t resident = device->MaxResidentElements(bytes_per_point);
    batch = std::max<std::size_t>(1, std::min(points.size(),
                                              std::max<std::size_t>(resident, 1)));
  }
  const std::size_t num_batches =
      points.empty() ? 0 : (points.size() + batch - 1) / batch;

  std::uint64_t drawn_total = 0;

  for (const raster::CanvasTile& tile : tiles) {
    raster::Viewport vp(tile.world, tile.width, tile.height);
    // Pooled canvas: per-query FBO allocation is the dominant transient
    // under concurrent traffic (see fbo_pool.h).
    raster::FboLease point_lease =
        raster::FboPool::Shared().Acquire(tile.width, tile.height);
    raster::Fbo& point_fbo = *point_lease;

    // --- Step I: draw points (batched when out-of-core). -----------------
    for (std::size_t b = 0; b < num_batches; ++b) {
      const std::size_t begin = b * batch;
      const std::size_t end = std::min(points.size(), begin + batch);

      // Host→device transfer of this batch's VBO.
      {
        ScopedPhase sp(&result.timing, phase::kTransfer);
        RJ_ASSIGN_OR_RETURN(
            auto vbo, device->Allocate(gpu::BufferKind::kVertexBuffer,
                                       (end - begin) * bytes_per_point));
        RJ_RETURN_NOT_OK(
            UploadBatch(device, vbo.get(), points, begin, end, columns));
        device->Free(vbo);
      }
      {
        ScopedPhase sp(&result.timing, phase::kProcessing);
        PointTable slice = points.Slice(begin, end);
        drawn_total += raster::DrawPoints(vp, slice, options.filters,
                                          options.weight_column, &point_fbo,
                                          &device->counters(),
                                          &device->pool());
      }
      device->counters().AddBatches(1);
    }

    // --- Step II: draw polygons over the tile. ---------------------------
    {
      ScopedPhase sp(&result.timing, phase::kTransfer);
      const std::size_t tri_bytes = TriangleVboBytes(soup.size());
      if (tri_bytes > 0) {
        RJ_ASSIGN_OR_RETURN(
            auto tri_vbo,
            device->Allocate(gpu::BufferKind::kVertexBuffer, tri_bytes));
        std::vector<std::uint8_t> zeros(tri_bytes, 0);
        RJ_RETURN_NOT_OK(device->CopyToDevice(tri_vbo.get(), 0, zeros.data(),
                                              tri_bytes));
        device->Free(tri_vbo);
      }
    }
    {
      ScopedPhase sp(&result.timing, phase::kProcessing);
      raster::ResultArrays tile_result(polys.size());
      raster::DrawPolygons(vp, soup, point_fbo, /*boundary_fbo=*/nullptr,
                           &tile_result, &device->counters(),
                           &device->pool());
      result.arrays.AddFrom(tile_result);
    }
    device->counters().AddRenderPasses(1);

    if (options.compute_result_ranges) {
      ScopedPhase sp(&result.timing, phase::kProcessing);
      RJ_ASSIGN_OR_RETURN(
          *ranges_out,
          ComputeResultRanges(vp, polys, soup, point_fbo,
                              FinalizeAggregate(AggregateKind::kCount,
                                                result.arrays),
                              &device->counters(), &device->pool()));
    }
  }

  if (stats != nullptr) {
    stats->num_tiles = tiles.size();
    stats->num_batches = num_batches * tiles.size();
    stats->points_drawn = drawn_total;
  }
  return result;
}

}  // namespace rj
