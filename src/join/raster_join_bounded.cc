#include "join/raster_join_bounded.h"

#include <algorithm>
#include <utility>

#include "join/batch_pipeline.h"
#include "raster/fbo_pool.h"

namespace rj {

namespace {

/// The one execution core both public overloads reach: streams scan list
/// `scan` (block ordinals into `source`) through a BatchPipeline, one
/// device batch per block, for every canvas tile. The in-memory overload
/// arrives here through a TableBlockSource whose blocks are exactly the
/// planned batch slices, so both paths share one loop and cannot drift.
Result<JoinResult> BoundedBlockJoin(
    gpu::Device* device, const data::PointBlockSource& source,
    std::vector<std::size_t> scan, const PolygonSet& polys,
    const TriangleSoup& soup, const BBox& world,
    const BoundedRasterJoinOptions& options, bool overlap,
    BoundedRasterJoinStats* stats, ResultRanges* ranges_out,
    std::optional<raster::Fbo>* point_fbo_out) {
  RJ_RETURN_NOT_OK(ValidatePolygonIds(polys));
  RJ_RETURN_NOT_OK(
      ValidateWeightColumnCount(source.num_attributes(),
                                options.weight_column));
  RJ_RETURN_NOT_OK(
      ValidateFiltersCount(source.num_attributes(), options.filters));
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }

  JoinResult result(polys.size());

  // Plan the canvas tiling for the requested ε (Fig. 5).
  RJ_ASSIGN_OR_RETURN(
      std::vector<raster::CanvasTile> tiles,
      raster::PlanCanvas(world, options.epsilon, device->options().max_fbo_dim));
  if (options.compute_result_ranges) {
    if (ranges_out == nullptr) {
      return Status::InvalidArgument(
          "compute_result_ranges requires ranges_out");
    }
    if (tiles.size() != 1) {
      return Status::NotImplemented(
          "result ranges require a single-tile canvas (reduce epsilon "
          "resolution or raise max_fbo_dim)");
    }
  }
  if (point_fbo_out != nullptr && tiles.size() != 1) {
    return Status::NotImplemented(
        "point-FBO export requires a single-tile canvas");
  }

  // Columns shipped to the device: filters' columns plus the aggregated one.
  // (The pipeline reads from the host table directly; the upload is for
  // transfer-cost fidelity — see DESIGN.md §2.)
  const std::vector<std::size_t> columns =
      UploadColumns(options.filters, options.weight_column);
  const std::size_t num_batches = scan.size();

  // Ship and meter the triangle VBO exactly once per query: it is the
  // same bytes for every tile pass, so re-uploading it per tile both
  // distorts the transfer breakdown and breaks PlanAdmission's
  // fixed_bytes assumption (the grant covers one triangle upload). Freed
  // before the point pipeline starts, so the device peak stays
  // max(fixed_bytes, in-flight point VBOs), never the sum.
  RJ_RETURN_NOT_OK(UploadTriangleVbo(device, soup.size(), &result.timing));

  std::uint64_t drawn_total = 0;

  // One pipeline for every tile pass: the transfer (and, for disk
  // sources, reader) thread and the slots' staging buffers stay warm
  // across tiles (Rewind re-streams the blocks per pass), instead of
  // paying a thread spawn and two batch-sized staging allocations per
  // tile.
  join::BatchPipeline pipeline(device, &source, std::move(scan), columns,
                               {overlap});

  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const raster::CanvasTile& tile = tiles[t];
    raster::Viewport vp(tile.world, tile.width, tile.height);
    // Pooled canvas: per-query FBO allocation is the dominant transient
    // under concurrent traffic (see fbo_pool.h).
    raster::FboLease point_lease =
        raster::FboPool::Shared().Acquire(tile.width, tile.height);
    raster::Fbo& point_fbo = *point_lease;

    // --- Step I: draw points (batched when out-of-core). -----------------
    // The pipeline prefetches batch b+1 (pack + CopyToDevice on its
    // transfer thread, metered under phase::kTransfer) while the draw
    // workers rasterize batch b.
    if (t > 0) RJ_RETURN_NOT_OK(pipeline.Rewind());
    for (;;) {
      RJ_ASSIGN_OR_RETURN(std::optional<join::BatchPipeline::BatchView> view,
                          pipeline.Acquire());
      if (!view.has_value()) break;
      {
        ScopedPhase sp(&result.timing, phase::kProcessing);
        const PointTable& rows = *view->rows;
        if (view->begin == 0 && view->end == rows.size()) {
          // Whole-table/whole-block batch: draw in place, no slice copy.
          drawn_total += raster::DrawPoints(vp, rows, options.filters,
                                            options.weight_column, &point_fbo,
                                            &device->counters(),
                                            &device->pool());
        } else {
          PointTable slice = rows.Slice(view->begin, view->end);
          drawn_total += raster::DrawPoints(vp, slice, options.filters,
                                            options.weight_column, &point_fbo,
                                            &device->counters(),
                                            &device->pool());
        }
      }
      pipeline.Release(*view);
      device->counters().AddBatches(1);
    }

    if (point_fbo_out != nullptr) {
      // Single tile (validated above): copy the canvas out of its pooled
      // lease for the caller's cross-shard gather.
      point_fbo_out->emplace(point_fbo);
    }

    // --- Step II: draw polygons over the tile. ---------------------------
    {
      ScopedPhase sp(&result.timing, phase::kProcessing);
      raster::ResultArrays tile_result(polys.size());
      raster::DrawPolygons(vp, soup, point_fbo, /*boundary_fbo=*/nullptr,
                           &tile_result, &device->counters(),
                           &device->pool());
      result.arrays.AddFrom(tile_result);
    }
    device->counters().AddRenderPasses(1);

    if (options.compute_result_ranges) {
      ScopedPhase sp(&result.timing, phase::kProcessing);
      RJ_ASSIGN_OR_RETURN(
          *ranges_out,
          ComputeResultRanges(vp, polys, soup, point_fbo,
                              FinalizeAggregate(AggregateKind::kCount,
                                                result.arrays),
                              &device->counters(), &device->pool()));
    }
  }
  RJ_RETURN_NOT_OK(pipeline.Drain(&result.timing));

  if (stats != nullptr) {
    stats->num_tiles = tiles.size();
    stats->num_batches = num_batches * tiles.size();
    stats->points_drawn = drawn_total;
  }
  return result;
}

}  // namespace

Result<JoinResult> BoundedRasterJoin(gpu::Device* device,
                                     const PointTable& points,
                                     const PolygonSet& polys,
                                     const TriangleSoup& soup,
                                     const BBox& world,
                                     const BoundedRasterJoinOptions& options,
                                     BoundedRasterJoinStats* stats,
                                     ResultRanges* ranges_out,
                                     std::optional<raster::Fbo>* point_fbo_out) {
  // Batch planning: points are transferred exactly once per tile pass set,
  // sized so the pipeline's in-flight buffers (2 when transfers overlap
  // the draw) fit the available budget.
  const std::size_t bytes_per_point =
      UploadBytesPerPoint(options.filters, options.weight_column);
  bool overlap = options.overlap_transfers;
  std::size_t batch = options.batch_size;
  if (batch == 0) {
    const UploadPlan plan = PlanUpload(device->bytes_free(), bytes_per_point,
                                       points.size(), overlap);
    batch = plan.batch_size;
    overlap = plan.overlap_transfers;
  }

  // The adapter's blocks are exactly the planned batch slices, so the
  // block core batches bitwise-identically to the historical table scan.
  data::TableBlockSource adapter(&points, std::max<std::size_t>(batch, 1));
  std::vector<std::size_t> scan(adapter.num_blocks());
  for (std::size_t b = 0; b < scan.size(); ++b) scan[b] = b;
  return BoundedBlockJoin(device, adapter, std::move(scan), polys, soup,
                          world, options, overlap, stats, ranges_out,
                          point_fbo_out);
}

Result<JoinResult> BoundedRasterJoin(gpu::Device* device,
                                     const data::PointBlockSource& source,
                                     const PolygonSet& polys,
                                     const TriangleSoup& soup,
                                     const BBox& world,
                                     const BoundedRasterJoinOptions& options,
                                     BoundedRasterJoinStats* stats,
                                     ResultRanges* ranges_out,
                                     std::optional<raster::Fbo>* point_fbo_out) {
  BlockSelection sel = SelectBlocks(source, options.filters, &world,
                                    options.enable_block_pruning);
  device->counters().AddBlocksScanned(sel.scanned);
  device->counters().AddBlocksPruned(sel.pruned);
  if (stats != nullptr) stats->blocks_pruned = sel.pruned;
  return BoundedBlockJoin(device, source, std::move(sel.blocks), polys, soup,
                          world, options, options.overlap_transfers, stats,
                          ranges_out, point_fbo_out);
}

}  // namespace rj
