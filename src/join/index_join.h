/// \file index_join.h
/// \brief Index Join baseline (§6.2): grid index + PIP per point, with the
/// aggregation fused into the join (no materialization).
///
/// Three flavours, matching the paper's experimental setup (§7.1):
///  * device   — the GPU baseline: index built on the device per query
///               (MBR cell assignment), PIP compute "shader" over points;
///  * CPU 1T   — single-threaded CPU with a *pre-built* exact-geometry
///               grid index (the paper's optimized CPU baseline);
///  * CPU MT   — the OpenMP-style parallel version: PIP loop split across
///               threads, per-thread accumulators merged at the end.
#pragma once

#include "gpu/device.h"
#include "index/grid_index.h"
#include "join/join_common.h"

namespace rj {

struct IndexJoinOptions {
  std::int32_t index_resolution = 1024;
  /// Cell-assignment mode; the CPU baseline uses exact geometry (§7.1),
  /// the device baseline MBRs (§6.1).
  GridAssignMode assign_mode = GridAssignMode::kMbr;
  std::size_t weight_column = PointTable::npos;
  FilterSet filters;
  /// Device batch size for out-of-core inputs (device flavour only;
  /// 0 = derive from memory budget).
  std::size_t batch_size = 0;

  /// Prefetch batch b+1 while batch b's PIP stage runs (device flavour;
  /// join::BatchPipeline, two point VBOs in flight). See
  /// BoundedRasterJoinOptions.
  bool overlap_transfers = true;

  /// Block-source executions only: zone-map pruning (see
  /// BoundedRasterJoinOptions::enable_block_pruning). Exact here too: a
  /// pruned block's points either fail the filters or fall outside the
  /// index extent, where GridIndex::Candidates returns no candidates — so
  /// both results *and* the pip_tests counter are unchanged by pruning.
  bool enable_block_pruning = true;

  /// Device flavour only: a caller-cached index to use instead of the
  /// per-query build (Executor::GetDeviceIndex hoists the §6.2 rebuild out
  /// of repeated traffic). Must have been built with GridIndex::Build over
  /// the same polygons, world, `index_resolution`, and `assign_mode` — the
  /// result is then bit-for-bit the per-query build's. The kIndexBuild
  /// phase reports ~0 when set (the build happened elsewhere, once). Not
  /// owned; must outlive the call.
  const GridIndex* prebuilt_index = nullptr;
};

/// Zone-map accounting of one block-source index join (the CPU flavour
/// has no gpu::Counters to meter into).
struct IndexJoinBlockStats {
  std::size_t blocks_scanned = 0;
  std::size_t blocks_pruned = 0;
};

/// Device (GPU-baseline) flavour; builds the index on the fly and meters
/// transfers, mirroring IndexJoin of §6.2.
Result<JoinResult> IndexJoinDevice(gpu::Device* device,
                                   const PointTable& points,
                                   const PolygonSet& polys, const BBox& world,
                                   const IndexJoinOptions& options);

/// Block-source execution (see the BoundedRasterJoin overload): streams
/// the zone-map-selected blocks; bitwise identical to the in-memory
/// overload on the materialized source.
Result<JoinResult> IndexJoinDevice(gpu::Device* device,
                                   const data::PointBlockSource& source,
                                   const PolygonSet& polys, const BBox& world,
                                   const IndexJoinOptions& options);

/// CPU flavour with a caller-provided (pre-built) index; set
/// `num_threads` = 1 for the single-core baseline the paper normalizes
/// speedups against, or > 1 for the OpenMP-style parallel version.
Result<JoinResult> IndexJoinCpu(const PointTable& points,
                                const PolygonSet& polys,
                                const GridIndex& index,
                                const IndexJoinOptions& options,
                                int num_threads);

/// CPU flavour over a block source: scans the zone-map-selected blocks
/// one at a time (the working set is one block, not the table), pruning
/// against the filters and the index extent. `stats` (optional) receives
/// the scan/prune counts.
Result<JoinResult> IndexJoinCpu(const data::PointBlockSource& source,
                                const PolygonSet& polys,
                                const GridIndex& index,
                                const IndexJoinOptions& options,
                                int num_threads,
                                IndexJoinBlockStats* stats = nullptr);

}  // namespace rj
