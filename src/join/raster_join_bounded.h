/// \file raster_join_bounded.h
/// \brief Bounded Raster Join (§4.1–4.2): approximate, ε-Hausdorff-bounded
/// spatial aggregation with zero point-in-polygon tests.
///
/// Algorithm (per canvas tile, per point batch):
///   Step I  (DrawPoints)   — render points into an FBO whose pixels hold
///                            partial aggregates, via additive blending.
///   Step II (DrawPolygons) — rasterize the triangulated polygons over the
///                            same canvas; each fragment of polygon i adds
///                            its pixel's partial aggregate to A[i].
/// The pixel side ε' = ε/√2 guarantees the implicit polygon approximation
/// is within Hausdorff distance ε of the true polygon; when the implied
/// canvas exceeds the device FBO limit it is split into tiles (Fig. 5) and
/// the two steps are repeated per tile.
#pragma once

#include <cstdint>
#include <optional>

#include "agg/result_range.h"
#include "gpu/device.h"
#include "join/join_common.h"
#include "raster/viewport.h"
#include "triangulate/triangulation.h"

namespace rj {

/// Options for one bounded raster join execution.
struct BoundedRasterJoinOptions {
  /// Hausdorff error bound ε in world units (paper default: 10 m for NYC,
  /// 1 km for US-extent data).
  double epsilon = 10.0;

  /// Aggregated attribute column (npos = COUNT-only query).
  std::size_t weight_column = PointTable::npos;

  /// Filter constraints evaluated in the vertex stage.
  FilterSet filters;

  /// Maximum points per device batch; 0 = derive from the device memory
  /// budget (out-of-core processing, §5).
  std::size_t batch_size = 0;

  /// Prefetch batch b+1 on a transfer thread while batch b draws
  /// (join::BatchPipeline), hiding the simulated PCIe wait behind the
  /// draw as the paper's Fig. 9/13 analysis assumes. Needs two point VBOs
  /// in flight (admission reserves 2× the upload stride). Off reproduces
  /// the serialized transfer→draw timing; results are bitwise identical
  /// either way.
  bool overlap_transfers = true;

  /// When set, also compute per-polygon result ranges (§5). Requires the
  /// canvas to fit in a single tile.
  bool compute_result_ranges = false;

  /// Block-source executions only: skip blocks whose zone map proves no
  /// row can pass the filters inside the canvas (SelectBlocks). Strictly
  /// conservative, so results are bitwise identical with pruning on or
  /// off — the knob exists for A/B timing and the determinism tests.
  bool enable_block_pruning = true;
};

/// Diagnostics of one bounded execution.
struct BoundedRasterJoinStats {
  std::size_t num_tiles = 0;
  std::size_t num_batches = 0;
  std::uint64_t points_drawn = 0;
  std::size_t blocks_pruned = 0;  ///< block-source executions only
};

/// Executes the bounded raster join on the simulated device.
///
/// `world` must cover the polygon set's extent (it defines the canvas).
/// Returns per-polygon partial aggregates; finalize with JoinResult::
/// Finalize. When options.compute_result_ranges is set, `ranges_out`
/// receives the §5 intervals (must be non-null in that case).
///
/// When `point_fbo_out` is non-null the post-Step-I point FBO is copied
/// out (single-tile canvases only — the same restriction as result
/// ranges). This is the sharded gather hook: per-shard point FBOs sum
/// pixel-wise to exactly the single-device FBO (integer-valued channel
/// partials), letting the Executor recompute §5 ranges bitwise-identically
/// across any shard count (docs/SERVICE.md).
Result<JoinResult> BoundedRasterJoin(gpu::Device* device,
                                     const PointTable& points,
                                     const PolygonSet& polys,
                                     const TriangleSoup& soup,
                                     const BBox& world,
                                     const BoundedRasterJoinOptions& options,
                                     BoundedRasterJoinStats* stats = nullptr,
                                     ResultRanges* ranges_out = nullptr,
                                     std::optional<raster::Fbo>* point_fbo_out =
                                         nullptr);

/// Block-source execution: streams the zone-map-selected blocks of
/// `source` (disk-resident files run the three-stage disk→host→device
/// pipeline; options.batch_size is ignored — the block capacity is the
/// batch size). Bitwise identical to running the in-memory overload on
/// the materialized source (data::MaterializeBlocks), for any block size,
/// worker count, or pruning setting.
Result<JoinResult> BoundedRasterJoin(gpu::Device* device,
                                     const data::PointBlockSource& source,
                                     const PolygonSet& polys,
                                     const TriangleSoup& soup,
                                     const BBox& world,
                                     const BoundedRasterJoinOptions& options,
                                     BoundedRasterJoinStats* stats = nullptr,
                                     ResultRanges* ranges_out = nullptr,
                                     std::optional<raster::Fbo>* point_fbo_out =
                                         nullptr);

}  // namespace rj
