/// \file join_common.h
/// \brief Shared declarations for the spatial-aggregation join operators.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "common/status.h"
#include "common/timer.h"
#include "data/point_table.h"
#include "geometry/polygon.h"
#include "gpu/counters.h"
#include "query/filter.h"

namespace rj {

/// Phase names used consistently across joins so benches can print the
/// paper's execution-time breakdowns (Figures 9, 11, 13).
namespace phase {
inline constexpr const char* kTransfer = "transfer";      ///< host→device
inline constexpr const char* kProcessing = "processing";  ///< device compute
inline constexpr const char* kTriangulation = "triangulation";
inline constexpr const char* kIndexBuild = "index_build";
inline constexpr const char* kDiskRead = "disk_read";
}  // namespace phase

/// Outcome of one join execution: per-polygon partial aggregates plus
/// timing/counter diagnostics.
struct JoinResult {
  raster::ResultArrays arrays;
  PhaseTimer timing;

  JoinResult() : arrays(0) {}
  explicit JoinResult(std::size_t num_polygons) : arrays(num_polygons) {}

  /// Finalized value of `kind` per polygon.
  std::vector<double> Finalize(AggregateKind kind) const {
    return FinalizeAggregate(kind, arrays);
  }
};

/// Validates that polygon ids are exactly 0..n-1 (the GROUP BY key layout
/// every operator assumes).
Status ValidatePolygonIds(const PolygonSet& polys);

/// Attribute columns shipped to the device for a query: the filters'
/// referenced columns plus the aggregated column (§5: "the data
/// corresponding to the attributes over which constraints are imposed is
/// also transferred to the GPU"). Filter columns first, weight appended if
/// not already present — the interleaved VBO layout every join uses.
std::vector<std::size_t> UploadColumns(const FilterSet& filters,
                                       std::size_t weight_column);

/// Width of one uploaded point: [x, y, col...] float32 interleaved. The
/// unit of every batch plan and admission grant (Executor, QueryService).
inline std::size_t UploadBytesPerPoint(const FilterSet& filters,
                                       std::size_t weight_column) {
  return (2 + UploadColumns(filters, weight_column).size()) * sizeof(float);
}

/// Bytes of the triangle VBO the bounded raster join uploads per tile pass
/// (id + 3 vertices per triangle). The single definition shared by the
/// join's allocation and Executor::PlanAdmission — if they drifted apart,
/// admission grants would stop covering the actual allocation and the
/// no-oversubscription invariant would silently break.
inline std::size_t TriangleVboBytes(std::size_t num_triangles) {
  return num_triangles * (6 * sizeof(float) + sizeof(std::int32_t));
}

inline Status ValidateWeightColumn(const PointTable& points,
                                   std::size_t weight_column) {
  if (weight_column != PointTable::npos &&
      weight_column >= points.num_attributes()) {
    return Status::InvalidArgument("weight column out of range");
  }
  return Status::OK();
}

inline Status ValidateFilters(const PointTable& points,
                              const FilterSet& filters) {
  for (const AttributeFilter& f : filters.filters()) {
    if (f.column >= points.num_attributes()) {
      return Status::InvalidArgument("filter references unknown column");
    }
  }
  return Status::OK();
}

/// Brute-force all-pairs reference implementation (test oracle): for every
/// point passing the filters, test every polygon. O(|P| · Σ|vertices|).
JoinResult ReferenceJoin(const PointTable& points, const PolygonSet& polys,
                         const FilterSet& filters, std::size_t weight_column);

}  // namespace rj
