/// \file join_common.h
/// \brief Shared declarations for the spatial-aggregation join operators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "common/status.h"
#include "common/timer.h"
#include "data/point_block_source.h"
#include "data/point_table.h"
#include "geometry/bbox.h"
#include "geometry/polygon.h"
#include "gpu/counters.h"
#include "gpu/device.h"
#include "query/filter.h"

namespace rj {

/// Phase names used consistently across joins so benches can print the
/// paper's execution-time breakdowns (Figures 9, 11, 13).
namespace phase {
inline constexpr const char* kTransfer = "transfer";      ///< host→device
inline constexpr const char* kProcessing = "processing";  ///< device compute
inline constexpr const char* kTriangulation = "triangulation";
inline constexpr const char* kIndexBuild = "index_build";
inline constexpr const char* kDiskRead = "disk_read";
}  // namespace phase

/// Outcome of one join execution: per-polygon partial aggregates plus
/// timing/counter diagnostics.
struct JoinResult {
  raster::ResultArrays arrays;
  PhaseTimer timing;

  JoinResult() : arrays(0) {}
  explicit JoinResult(std::size_t num_polygons) : arrays(num_polygons) {}

  /// Finalized value of `kind` per polygon.
  std::vector<double> Finalize(AggregateKind kind) const {
    return FinalizeAggregate(kind, arrays);
  }
};

/// Validates that polygon ids are exactly 0..n-1 (the GROUP BY key layout
/// every operator assumes).
Status ValidatePolygonIds(const PolygonSet& polys);

/// Attribute columns shipped to the device for a query: the filters'
/// referenced columns plus the aggregated column (§5: "the data
/// corresponding to the attributes over which constraints are imposed is
/// also transferred to the GPU"). Filter columns first, weight appended if
/// not already present — the interleaved VBO layout every join uses.
std::vector<std::size_t> UploadColumns(const FilterSet& filters,
                                       std::size_t weight_column);

/// Width of one uploaded point for an explicit column set: [x, y, col...]
/// float32 interleaved (PointTable::DeviceBytesPerPoint is the single
/// definition of the layout).
inline std::size_t UploadStrideBytes(const std::vector<std::size_t>& columns) {
  return PointTable::DeviceBytesPerPoint(columns.size());
}

/// Width of one uploaded point: [x, y, col...] float32 interleaved. The
/// unit of every batch plan and admission grant (Executor, QueryService).
inline std::size_t UploadBytesPerPoint(const FilterSet& filters,
                                       std::size_t weight_column) {
  return UploadStrideBytes(UploadColumns(filters, weight_column));
}

/// Bytes of the triangle VBO the bounded raster join uploads once per
/// query (id + 3 vertices per triangle). The single definition shared by
/// the join's allocation and Executor::PlanAdmission — if they drifted
/// apart, admission grants would stop covering the actual allocation and
/// the no-oversubscription invariant would silently break.
inline std::size_t TriangleVboBytes(std::size_t num_triangles) {
  return num_triangles * (6 * sizeof(float) + sizeof(std::int32_t));
}

/// Points per device batch for an upload pipeline working within
/// `avail_bytes`. When the whole point set fits, it ships as one batch
/// (one buffer ever lives). Otherwise the budget is split across the
/// buffers the pipeline keeps in flight: 2 when transfers overlap the
/// draw (BatchPipeline prefetches batch b+1 while b draws), 1 when
/// serialized. Shared by the joins' own planning (avail = device free
/// bytes) and Executor's grant-capped planning (avail = admission grant),
/// so a grant of PlanAdmission::min_bytes always covers the in-flight
/// buffers.
inline std::size_t PlanPointBatch(std::size_t avail_bytes,
                                  std::size_t bytes_per_point,
                                  std::size_t num_points,
                                  bool overlap_transfers) {
  const std::size_t n = std::max<std::size_t>(num_points, 1);
  if (bytes_per_point == 0) return n;
  const std::size_t resident = avail_bytes / bytes_per_point;
  if (resident >= n) return n;  // single batch, single buffer
  const std::size_t slots = overlap_transfers ? 2 : 1;
  return std::max<std::size_t>(1, resident / slots);
}

/// Batch size plus *effective* overlap for an upload pipeline working
/// within `avail_bytes`: overlap is downgraded to serialized when the
/// budget cannot hold two one-point buffers (progress beats prefetch), so
/// the planned in-flight bytes never exceed the budget. The one planner
/// shared by the joins (avail = device free bytes) and the Executor
/// (avail = the query's admission grant).
struct UploadPlan {
  std::size_t batch_size = 0;
  bool overlap_transfers = false;
};

inline UploadPlan PlanUpload(std::size_t avail_bytes,
                             std::size_t bytes_per_point,
                             std::size_t num_points, bool overlap_requested) {
  UploadPlan plan;
  plan.overlap_transfers =
      overlap_requested && avail_bytes >= 2 * bytes_per_point;
  plan.batch_size = PlanPointBatch(avail_bytes, bytes_per_point, num_points,
                                   plan.overlap_transfers);
  return plan;
}

inline Status ValidateWeightColumnCount(std::size_t num_attributes,
                                        std::size_t weight_column) {
  if (weight_column != PointTable::npos && weight_column >= num_attributes) {
    return Status::InvalidArgument("weight column out of range");
  }
  return Status::OK();
}

inline Status ValidateWeightColumn(const PointTable& points,
                                   std::size_t weight_column) {
  return ValidateWeightColumnCount(points.num_attributes(), weight_column);
}

inline Status ValidateFiltersCount(std::size_t num_attributes,
                                   const FilterSet& filters) {
  for (const AttributeFilter& f : filters.filters()) {
    if (f.column >= num_attributes) {
      return Status::InvalidArgument("filter references unknown column");
    }
  }
  return Status::OK();
}

inline Status ValidateFilters(const PointTable& points,
                              const FilterSet& filters) {
  return ValidateFiltersCount(points.num_attributes(), filters);
}

/// True when a block with zone map `zone` may contain rows that satisfy
/// `filters` and fall inside `canvas_world` (pass nullptr to skip the
/// spatial test). Strictly conservative: every comparison keeps the block
/// on ties and treats missing information (a filter column beyond the zone
/// map's range list) as "may match", so pruning can only skip blocks whose
/// rows provably contribute nothing — which is what keeps disk execution
/// bitwise identical to a full scan. The bbox test is closed
/// (BBox::Intersects), matching GridIndex's closed Contains and the raster
/// variants' boundary clipping: a block touching the canvas edge is
/// scanned, never pruned. Column ranges exclude NaN (NaN fails every
/// FilterOp, so excluding it never prunes a matching row); an all-NaN
/// column yields an empty range (min > max) that legitimately prunes under
/// any filter on that column.
bool ZoneMapCanMatch(const data::BlockZoneMap& zone, const FilterSet& filters,
                     const BBox* canvas_world);

/// The scan list a block-source join executes: block ordinals that survive
/// zone-map pruning, in ascending order, plus the counts the Counters
/// meter (scanned + pruned == source.num_blocks()).
struct BlockSelection {
  std::vector<std::size_t> blocks;
  std::size_t scanned = 0;
  std::size_t pruned = 0;
};

/// Selects the blocks of `source` worth scanning for a query with
/// `filters` over `canvas_world` (nullptr: no spatial restriction).
/// Blocks without zone maps are always scanned; `enable_pruning = false`
/// selects everything (the A/B baseline the determinism tests compare
/// against).
BlockSelection SelectBlocks(const data::PointBlockSource& source,
                            const FilterSet& filters, const BBox* canvas_world,
                            bool enable_pruning);

/// Ships and meters the bounded join's triangle VBO exactly once per
/// query (allocate → zero-fill upload → free, timed under
/// phase::kTransfer). Shared by BoundedRasterJoin and
/// StreamingBoundedJoin::Finish so the two cannot drift in what they
/// meter — TriangleVboBytes keeps them aligned with PlanAdmission's
/// fixed_bytes.
Status UploadTriangleVbo(gpu::Device* device, std::size_t num_triangles,
                         PhaseTimer* timing);

/// Brute-force all-pairs reference implementation (test oracle): for every
/// point passing the filters, test every polygon. O(|P| · Σ|vertices|).
JoinResult ReferenceJoin(const PointTable& points, const PolygonSet& polys,
                         const FilterSet& filters, std::size_t weight_column);

}  // namespace rj
