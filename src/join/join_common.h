/// \file join_common.h
/// \brief Shared declarations for the spatial-aggregation join operators.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "common/status.h"
#include "common/timer.h"
#include "data/point_table.h"
#include "geometry/polygon.h"
#include "gpu/counters.h"
#include "query/filter.h"

namespace rj {

/// Phase names used consistently across joins so benches can print the
/// paper's execution-time breakdowns (Figures 9, 11, 13).
namespace phase {
inline constexpr const char* kTransfer = "transfer";      ///< host→device
inline constexpr const char* kProcessing = "processing";  ///< device compute
inline constexpr const char* kTriangulation = "triangulation";
inline constexpr const char* kIndexBuild = "index_build";
inline constexpr const char* kDiskRead = "disk_read";
}  // namespace phase

/// Outcome of one join execution: per-polygon partial aggregates plus
/// timing/counter diagnostics.
struct JoinResult {
  raster::ResultArrays arrays;
  PhaseTimer timing;

  JoinResult() : arrays(0) {}
  explicit JoinResult(std::size_t num_polygons) : arrays(num_polygons) {}

  /// Finalized value of `kind` per polygon.
  std::vector<double> Finalize(AggregateKind kind) const {
    return FinalizeAggregate(kind, arrays);
  }
};

/// Validates that polygon ids are exactly 0..n-1 (the GROUP BY key layout
/// every operator assumes).
Status ValidatePolygonIds(const PolygonSet& polys);

inline Status ValidateWeightColumn(const PointTable& points,
                                   std::size_t weight_column) {
  if (weight_column != PointTable::npos &&
      weight_column >= points.num_attributes()) {
    return Status::InvalidArgument("weight column out of range");
  }
  return Status::OK();
}

inline Status ValidateFilters(const PointTable& points,
                              const FilterSet& filters) {
  for (const AttributeFilter& f : filters.filters()) {
    if (f.column >= points.num_attributes()) {
      return Status::InvalidArgument("filter references unknown column");
    }
  }
  return Status::OK();
}

/// Brute-force all-pairs reference implementation (test oracle): for every
/// point passing the filters, test every polygon. O(|P| · Σ|vertices|).
JoinResult ReferenceJoin(const PointTable& points, const PolygonSet& polys,
                         const FilterSet& filters, std::size_t weight_column);

}  // namespace rj
