/// \file raster_join_accurate.h
/// \brief Accurate Raster Join (§4.3): exact spatial aggregation that
/// performs point-in-polygon tests only for points on boundary pixels.
///
/// Three steps (per canvas tile, per point batch):
///   1. Draw all polygon outlines into a boundary FBO with conservative
///      rasterization (no partially-covered pixel may be missed).
///   2. Draw points: a point landing on a boundary pixel is resolved with
///      exact PIP tests against the grid-index candidates (Procedure
///      JoinPoint); every other point is blended into the point FBO.
///   3. Render polygons, skipping fragments on boundary pixels (those
///      points were already handled in step 2).
#pragma once

#include "gpu/device.h"
#include "index/grid_index.h"
#include "join/join_common.h"
#include "raster/viewport.h"
#include "triangulate/triangulation.h"

namespace rj {

struct AccurateRasterJoinOptions {
  /// Canvas resolution (single tile; the accurate variant needs no ε, the
  /// paper uses the device's maximum FBO resolution).
  std::int32_t canvas_dim = 0;  ///< 0 = device max_fbo_dim

  /// Grid-index resolution for Procedure JoinPoint (paper: 1024²).
  std::int32_t index_resolution = 1024;

  std::size_t weight_column = PointTable::npos;
  FilterSet filters;

  /// Maximum points per device batch (0 = derive from memory budget).
  std::size_t batch_size = 0;

  /// Prefetch batch b+1 while batch b draws (join::BatchPipeline; two
  /// point VBOs in flight). See BoundedRasterJoinOptions.
  bool overlap_transfers = true;

  /// Block-source executions only: zone-map pruning (see
  /// BoundedRasterJoinOptions::enable_block_pruning).
  bool enable_block_pruning = true;
};

struct AccurateRasterJoinStats {
  std::uint64_t boundary_points = 0;  ///< points that needed PIP resolution
  std::uint64_t interior_points = 0;  ///< points on the fast raster path
  std::uint64_t pip_tests = 0;        ///< exact tests actually executed
  std::size_t num_batches = 0;
  std::size_t blocks_pruned = 0;      ///< block-source executions only
};

/// Executes the accurate raster join; results are exact (equal to
/// ReferenceJoin) for any canvas resolution.
Result<JoinResult> AccurateRasterJoin(gpu::Device* device,
                                      const PointTable& points,
                                      const PolygonSet& polys,
                                      const TriangleSoup& soup,
                                      const BBox& world,
                                      const AccurateRasterJoinOptions& options,
                                      AccurateRasterJoinStats* stats = nullptr);

/// Block-source execution (see the BoundedRasterJoin overload): streams
/// the zone-map-selected blocks; bitwise identical to the in-memory
/// overload on the materialized source.
Result<JoinResult> AccurateRasterJoin(gpu::Device* device,
                                      const data::PointBlockSource& source,
                                      const PolygonSet& polys,
                                      const TriangleSoup& soup,
                                      const BBox& world,
                                      const AccurateRasterJoinOptions& options,
                                      AccurateRasterJoinStats* stats = nullptr);

}  // namespace rj
