#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace rj::service {

QueryService::QueryService(gpu::Device* device, ServiceOptions options)
    : device_(device), options_(options) {
  if (options_.num_dispatchers == 0) {
    options_.num_dispatchers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  options_.max_queue_depth = std::max<std::size_t>(1, options_.max_queue_depth);
  options_.max_device_share =
      std::clamp(options_.max_device_share, 0.0, 1.0);
  slots_.resize(options_.num_dispatchers);
  idle_.reserve(options_.num_dispatchers);
  dispatchers_.reserve(options_.num_dispatchers);
  for (std::size_t i = 0; i < options_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { DispatchLoop(i); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    for (DispatcherSlot& slot : slots_) {
      slot.wake = true;
      slot.cv.notify_one();
    }
  }
  cv_space_.notify_all();  // release any blocked submitters (caller error,
                           // but fail their queries instead of hanging)
  // Dispatchers drain the remaining queue before exiting, so every
  // accepted promise is fulfilled.
  for (std::thread& t : dispatchers_) t.join();
}

std::size_t QueryService::RegisterDataset(const PointTable* points,
                                          const PolygonSet* polys) {
  auto executor = std::make_unique<Executor>(device_, points, polys);
  std::lock_guard<std::mutex> lock(mutex_);
  executors_.push_back(std::move(executor));
  return executors_.size() - 1;
}

Executor* QueryService::dataset_executor(std::size_t dataset_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return dataset_id < executors_.size() ? executors_[dataset_id].get()
                                        : nullptr;
}

std::future<ServiceResponse> QueryService::Submit(std::size_t dataset_id,
                                                  const SpatialAggQuery& query,
                                                  SubmitOptions options) {
  return Enqueue(dataset_id, query, options, /*blocking=*/true, nullptr);
}

Result<std::future<ServiceResponse>> QueryService::TrySubmit(
    std::size_t dataset_id, const SpatialAggQuery& query,
    SubmitOptions options) {
  Status reject = Status::OK();
  std::future<ServiceResponse> future =
      Enqueue(dataset_id, query, options, /*blocking=*/false, &reject);
  if (!reject.ok()) return reject;
  return future;
}

std::future<ServiceResponse> QueryService::Enqueue(
    std::size_t dataset_id, const SpatialAggQuery& query,
    SubmitOptions options, bool blocking, Status* reject_status) {
  Pending pending;
  pending.dataset = dataset_id;
  pending.query = query;
  pending.priority = options.priority;
  std::future<ServiceResponse> future = pending.promise.get_future();

  // Validation failures resolve the future immediately (a structured
  // per-query error, not a service-level reject).
  Status invalid = Status::OK();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (dataset_id >= executors_.size()) {
      invalid = Status::InvalidArgument(
          "unknown dataset id " + std::to_string(dataset_id));
    } else if (stop_) {
      invalid = Status::CapacityError("query service is shutting down");
    } else if (!blocking &&
               QueueDepthLocked() >= options_.max_queue_depth) {
      // Fast-fail lane: report queue-full to the caller, not the future.
      ++rejected_;
      if (reject_status != nullptr) {
        *reject_status = Status::CapacityError(
            "submission queue full (" +
            std::to_string(options_.max_queue_depth) + " queued)");
      }
      return future;  // TrySubmit discards it via the error path
    } else if (blocking) {
      // Backpressure: hold the submitter until a slot frees up.
      cv_space_.wait(lock, [this] {
        return stop_ || QueueDepthLocked() < options_.max_queue_depth;
      });
      if (stop_) {
        invalid = Status::CapacityError("query service is shutting down");
      }
    }
    if (invalid.ok()) {
      pending.sequence = next_sequence_++;
      pending.queued.Restart();
      ++submitted_;
      (options.priority == Priority::kHigh ? priority_ : fifo_)
          .push_back(std::move(pending));
      WakeOneLocked();
    }
  }
  if (!invalid.ok()) {
    QueryStats stats;
    pending.promise.set_value(ServiceResponse{std::move(invalid), stats});
  }
  return future;
}

void QueryService::WakeOneLocked() {
  if (idle_.empty()) return;  // all dispatchers busy; one will pop later
  const std::size_t slot = idle_.back();
  idle_.pop_back();
  slots_[slot].wake = true;
  slots_[slot].cv.notify_one();
}

void QueryService::DispatchLoop(std::size_t slot) {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (priority_.empty() && fifo_.empty()) {
        if (stop_) return;
        // Park on this dispatcher's own slot, most-recently-idle at the
        // back of the stack, so the next submission reuses a warm thread.
        idle_.push_back(slot);
        slots_[slot].wake = false;
        slots_[slot].cv.wait(lock, [this, slot] {
          return slots_[slot].wake;
        });
      }
      std::deque<Pending>& lane = priority_.empty() ? fifo_ : priority_;
      pending = std::move(lane.front());
      lane.pop_front();
      pending.dispatch_order = next_dispatch_order_++;
      ++running_;
    }
    cv_space_.notify_one();  // a queue slot freed up
    RunQuery(std::move(pending));
  }
}

void QueryService::RunQuery(Pending pending) {
  QueryStats stats;
  stats.sequence = pending.sequence;
  stats.dispatch_order = pending.dispatch_order;

  Executor* executor = dataset_executor(pending.dataset);
  // Registration precedes submission validation, so this cannot be null.

  // --- Admission: size and reserve this query's device-memory grant. -----
  Result<AdmissionPlan> plan = executor->PlanAdmission(pending.query);
  if (!plan.ok()) {
    Respond(&pending, plan.status(), stats);
    return;
  }

  gpu::MemoryReservation grant;
  if (plan.value().min_bytes > 0) {
    // The try/wait cycle runs under mutex_ so a grant release (which takes
    // mutex_ before notifying) cannot slip between a failed TryReserve and
    // the wait — no lost wakeups. Lock order is always mutex_ → device
    // mutex, never the reverse.
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const std::size_t budget = device_->memory_budget_bytes();
      if (plan.value().min_bytes > budget) {
        // Can never run, even alone on the device: reject, don't queue.
        lock.unlock();
        Respond(&pending,
                Status::CapacityError(
                    "query needs " + std::to_string(plan.value().min_bytes) +
                    " bytes of device memory; budget is " +
                    std::to_string(budget)),
                stats);
        return;
      }
      // Grant policy: hold the full working set when it fits under the
      // per-query share cap (no batching); otherwise the capped share,
      // floored at the minimum the query can make progress with.
      const auto share_cap = static_cast<std::size_t>(
          static_cast<double>(budget) * options_.max_device_share);
      const std::size_t target = std::min(
          plan.value().full_bytes,
          std::max(share_cap, plan.value().min_bytes));

      Result<gpu::MemoryReservation> reservation =
          device_->TryReserve(target);
      if (reservation.ok()) {
        grant = std::move(reservation).MoveValueUnsafe();
        break;
      }
      // Insufficient unreserved budget right now: queue (do not fail)
      // until a running query releases its grant. Bounded wait: grant
      // releases notify cv_capacity_, but budget resizes
      // (set_memory_budget_bytes) and reservations released by non-service
      // holders of the shared device do not — the timeout re-runs the
      // budget checks so those paths cannot wedge the dispatcher.
      cv_capacity_.wait_for(lock, std::chrono::milliseconds(100));
    }
  }
  stats.granted_bytes = grant.bytes();

  // --- Execution, batched to the grant. ----------------------------------
  SpatialAggQuery query = pending.query;
  query.device_memory_cap_bytes = grant.bytes();
  stats.queue_seconds = pending.queued.ElapsedSeconds();
  stats.device_counters_before = device_->counters().Snapshot();
  Timer exec;
  Result<QueryResult> result = executor->Execute(query);
  stats.execute_seconds = exec.ElapsedSeconds();
  stats.device_counters_after = device_->counters().Snapshot();

  if (grant.active()) {
    grant.Release();
    // Empty critical section pairs with the waiters' locked try/wait cycle
    // so the notify cannot be lost.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_capacity_.notify_all();
  }

  Respond(&pending, std::move(result), stats);
}

void QueryService::Respond(Pending* pending, Result<QueryResult> result,
                           QueryStats stats) {
  // Accounting first: a client whose future just resolved must not read a
  // stats() snapshot that still lags behind its own completion.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    if (!result.ok()) ++failed_;
    if (running_ > 0) --running_;
  }
  pending->promise.set_value(ServiceResponse{std::move(result), stats});
  cv_drain_.notify_all();
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_drain_.wait(lock, [this] {
    return priority_.empty() && fifo_.empty() && running_ == 0;
  });
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.failed = failed_;
  s.queue_depth = QueueDepthLocked();
  s.running = running_;
  return s;
}

}  // namespace rj::service
