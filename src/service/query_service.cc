#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "data/block_file.h"

namespace rj::service {

QueryService::QueryService(gpu::Device* device, ServiceOptions options)
    : QueryService(std::make_unique<gpu::DevicePool>(
                       std::vector<gpu::Device*>{device}),
                   nullptr, options) {}

QueryService::QueryService(gpu::DevicePool* pool, ServiceOptions options)
    : QueryService(nullptr, pool, options) {}

QueryService::QueryService(std::unique_ptr<gpu::DevicePool> owned,
                           gpu::DevicePool* pool, ServiceOptions options)
    : owned_pool_(std::move(owned)),
      pool_(pool != nullptr ? pool : owned_pool_.get()),
      options_(options) {
  if (options_.num_dispatchers == 0) {
    options_.num_dispatchers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  options_.max_queue_depth = std::max<std::size_t>(1, options_.max_queue_depth);
  options_.max_device_share =
      std::clamp(options_.max_device_share, 0.0, 1.0);
  options_.max_fusion_group_size =
      std::max<std::size_t>(1, options_.max_fusion_group_size);
  if (options_.result_cache_bytes > 0) {
    query::ResultCacheOptions cache_options;
    cache_options.capacity_bytes = options_.result_cache_bytes;
    cache_options.num_shards =
        std::max<std::size_t>(1, options_.result_cache_shards);
    cache_ = std::make_unique<query::ResultCache>(cache_options);
  }
  slots_.resize(options_.num_dispatchers);
  idle_.reserve(options_.num_dispatchers);
  dispatchers_.reserve(options_.num_dispatchers);
  for (std::size_t i = 0; i < options_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { DispatchLoop(i); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  // One implementation for the destructor drain and the graceful-drain
  // path, so the two can never diverge: mark the cut under mutex_ (every
  // later Enqueue observes stop_ and fails with a retryable CapacityError),
  // wake everything, then join the dispatchers — they drain every query
  // accepted before the cut, so every accepted promise is fulfilled and no
  // query can run after this returns (the destructor tears executors down
  // only afterwards). call_once makes concurrent/repeat callers block
  // until the first drain completes instead of double-joining.
  std::call_once(shutdown_once_, [this] {
    {
      MutexLock lock(mutex_);
      stop_ = true;
      for (DispatcherSlot& slot : slots_) {
        slot.wake = true;
        slot.cv.NotifyOne();
      }
    }
    cv_space_.NotifyAll();  // release blocked submitters (their queries
                             // fail with the shutdown error, never hang)
    for (std::thread& t : dispatchers_) t.join();
  });
}

namespace {
/// Index of the executor registered for the same backing tables, or npos.
/// `points`/`shards` are matched as identity pointers (one of them null
/// depending on the registration shape).
std::size_t FindDatasetLocked(
    const std::vector<std::unique_ptr<Executor>>& executors,
    const PointTable* points, const data::ShardedTable* shards,
    const PolygonSet* polys) {
  for (std::size_t id = 0; id < executors.size(); ++id) {
    if (executors[id]->points() == points &&
        executors[id]->shards() == shards &&
        executors[id]->polys() == polys) {
      return id;
    }
  }
  return static_cast<std::size_t>(-1);
}
}  // namespace

std::size_t QueryService::RegisterDataset(const PointTable* points,
                                          const PolygonSet* polys,
                                          std::string name) {
  // Re-registration: same backing tables ⇒ same dataset id, but the
  // caller is announcing a change — bump the version so cached results
  // for the previous contents stop matching. The executor is constructed
  // optimistically outside mutex_ (it scans the polygon set) and the
  // find-or-insert decision is a single critical section, so two racing
  // registrations of the same pair cannot mint two ids.
  auto executor = std::make_unique<Executor>(pool_->primary(), points, polys);
  MutexLock lock(mutex_);
  const std::size_t existing =
      FindDatasetLocked(executors_, points, nullptr, polys);
  if (existing != static_cast<std::size_t>(-1)) {
    executors_[existing]->BumpDatasetVersion();
    if (!name.empty()) dataset_names_[existing] = std::move(name);
    return existing;
  }
  executors_.push_back(std::move(executor));
  const std::size_t id = executors_.size() - 1;
  AttachCacheLocked(id);
  dataset_names_.push_back(name.empty() ? "dataset-" + std::to_string(id)
                                        : std::move(name));
  return id;
}

void QueryService::AttachCacheLocked(std::size_t id) {
  // The executor shares the service cache under the dataset id it is
  // registered as, which is the same identity the service's whole-query
  // keys carry — so the executor's per-shard partial entries
  // (CacheKey::shard set) and the service's whole-query entries
  // (CacheKey::kNoShard) live in one coherent key space and invalidate
  // together on version bumps. Registration happens before any query can
  // reference the id, satisfying set_result_cache's attach-before-traffic
  // contract.
  if (cache_ != nullptr) executors_[id]->set_result_cache(cache_.get(), id);
}

std::size_t QueryService::RegisterDataset(PointTable* points,
                                          const PolygonSet* polys,
                                          std::string name) {
  // Registration is the single-writer-before-sharing point (the table must
  // not mutate once queries run), so cache the O(n) extent scan here —
  // the executor's world computation and every later Extent() are O(1).
  points->CacheExtent();
  return RegisterDataset(static_cast<const PointTable*>(points), polys,
                         std::move(name));
}

Result<std::size_t> QueryService::RegisterDatasetFromFile(
    const std::string& path, const PolygonSet* polys, std::string name) {
  RJ_ASSIGN_OR_RETURN(std::unique_ptr<data::PointBlockSource> source,
                      data::OpenPointBlockSource(path));
  // Each open mints a fresh source (and id): identity-dedupe like
  // RegisterDataset has nothing to key on, and re-registering a path is a
  // deliberate reload — the old id keeps serving its (still-mapped) file.
  auto executor =
      std::make_unique<Executor>(pool_->primary(), source.get(), polys);
  MutexLock lock(mutex_);
  executors_.push_back(std::move(executor));
  owned_sources_.push_back(std::move(source));
  const std::size_t id = executors_.size() - 1;
  AttachCacheLocked(id);
  dataset_names_.push_back(name.empty() ? "dataset-" + std::to_string(id)
                                        : std::move(name));
  return id;
}

std::size_t QueryService::RegisterShardedDataset(
    const data::ShardedTable* shards, const PolygonSet* polys,
    std::string name) {
  auto executor = std::make_unique<Executor>(pool_, shards, polys);
  MutexLock lock(mutex_);
  const std::size_t existing =
      FindDatasetLocked(executors_, nullptr, shards, polys);
  if (existing != static_cast<std::size_t>(-1)) {
    executors_[existing]->BumpDatasetVersion();
    if (!name.empty()) dataset_names_[existing] = std::move(name);
    return existing;
  }
  executors_.push_back(std::move(executor));
  const std::size_t id = executors_.size() - 1;
  AttachCacheLocked(id);
  dataset_names_.push_back(name.empty() ? "dataset-" + std::to_string(id)
                                        : std::move(name));
  return id;
}

Result<std::size_t> QueryService::ResolveDataset(
    const std::string& name) const {
  MutexLock lock(mutex_);
  // Latest registration wins when a name was reused (shadowing).
  for (std::size_t i = dataset_names_.size(); i-- > 0;) {
    if (dataset_names_[i] == name) return i;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

std::vector<DatasetInfo> QueryService::ListDatasets() const {
  MutexLock lock(mutex_);
  std::vector<DatasetInfo> out;
  out.reserve(executors_.size());
  for (std::size_t id = 0; id < executors_.size(); ++id) {
    const Executor& e = *executors_[id];
    DatasetInfo info;
    info.id = id;
    info.name = dataset_names_[id];
    info.sharded = e.sharded();
    info.num_shards = e.num_shards();
    if (e.sharded()) {
      info.num_points = e.shards()->total_points();
    } else if (e.source_backed()) {
      info.num_points = static_cast<std::size_t>(e.block_source()->num_rows());
      info.disk_resident = e.block_source()->disk_resident();
    } else {
      info.num_points = e.points()->size();
    }
    info.num_polygons = e.polys()->size();
    info.num_attribute_columns = e.num_attribute_columns();
    info.version = e.dataset_version();
    out.push_back(std::move(info));
  }
  return out;
}

void QueryService::InvalidateDataset(std::size_t dataset_id) {
  Executor* executor = dataset_executor(dataset_id);
  if (executor != nullptr) executor->BumpDatasetVersion();
}

Executor* QueryService::dataset_executor(std::size_t dataset_id) {
  MutexLock lock(mutex_);
  return dataset_id < executors_.size() ? executors_[dataset_id].get()
                                        : nullptr;
}

std::future<ServiceResponse> QueryService::Submit(std::size_t dataset_id,
                                                  const SpatialAggQuery& query,
                                                  SubmitOptions options) {
  return Enqueue(dataset_id, query, options, /*blocking=*/true, nullptr);
}

Result<std::future<ServiceResponse>> QueryService::TrySubmit(
    std::size_t dataset_id, const SpatialAggQuery& query,
    SubmitOptions options) {
  Status reject = Status::OK();
  std::future<ServiceResponse> future =
      Enqueue(dataset_id, query, options, /*blocking=*/false, &reject);
  if (!reject.ok()) return reject;
  return future;
}

std::future<ServiceResponse> QueryService::Submit(std::size_t dataset_id,
                                                  const QuerySpec& spec,
                                                  const ExecPolicy& policy,
                                                  SubmitOptions options) {
  return Submit(dataset_id, spec.ToQuery(policy), options);
}

Result<std::future<ServiceResponse>> QueryService::TrySubmit(
    std::size_t dataset_id, const QuerySpec& spec, const ExecPolicy& policy,
    SubmitOptions options) {
  return TrySubmit(dataset_id, spec.ToQuery(policy), options);
}

std::future<ServiceResponse> QueryService::Enqueue(
    std::size_t dataset_id, const SpatialAggQuery& query,
    SubmitOptions options, bool blocking, Status* reject_status) {
  Pending pending;
  pending.dataset = dataset_id;
  pending.query = query;
  pending.priority = options.priority;
  std::future<ServiceResponse> future = pending.promise.get_future();

  // Validation failures resolve the future immediately (a structured
  // per-query error, not a service-level reject).
  Status invalid = Status::OK();
  {
    MutexLock lock(mutex_);
    if (dataset_id >= executors_.size()) {
      invalid = Status::NotFound("unknown dataset id " +
                                 std::to_string(dataset_id));
    } else if (Status columns = ValidateQueryColumns(
                   query, executors_[dataset_id]->num_attribute_columns());
               !columns.ok()) {
      // Submit-time validation: bad column references are a structured
      // per-query error, resolved through the future before admission.
      invalid = std::move(columns);
    } else if (stop_) {
      invalid = Status::CapacityError("query service is shutting down");
    } else if (!blocking &&
               QueueDepthLocked() >= options_.max_queue_depth) {
      // Fast-fail lane: report queue-full to the caller, not the future.
      ++rejected_;
      if (reject_status != nullptr) {
        *reject_status = Status::CapacityError(
            "submission queue full (" +
            std::to_string(options_.max_queue_depth) + " queued)");
      }
      return future;  // TrySubmit discards it via the error path
    } else if (blocking) {
      // Backpressure: hold the submitter until a slot frees up.
      while (!stop_ && QueueDepthLocked() >= options_.max_queue_depth) {
        cv_space_.Wait(lock);
      }
      if (stop_) {
        invalid = Status::CapacityError("query service is shutting down");
      }
    }
    if (invalid.ok()) {
      pending.sequence = next_sequence_++;
      pending.queued.Restart();
      ++submitted_;
      (options.priority == Priority::kHigh ? priority_ : fifo_)
          .push_back(std::move(pending));
      WakeOneLocked();
    }
  }
  if (!invalid.ok()) {
    QueryStats stats;
    pending.promise.set_value(ServiceResponse{std::move(invalid), stats});
  }
  return future;
}

void QueryService::WakeOneLocked() {
  if (idle_.empty()) return;  // all dispatchers busy; one will pop later
  const std::size_t slot = idle_.back();
  idle_.pop_back();
  slots_[slot].wake = true;
  slots_[slot].cv.NotifyOne();
}

void QueryService::DispatchLoop(std::size_t slot) {
  for (;;) {
    std::vector<Pending> group;
    {
      MutexLock lock(mutex_);
      while (priority_.empty() && fifo_.empty()) {
        if (stop_) return;
        // Park on this dispatcher's own slot, most-recently-idle at the
        // back of the stack, so the next submission reuses a warm thread.
        idle_.push_back(slot);
        slots_[slot].wake = false;
        while (!slots_[slot].wake) slots_[slot].cv.Wait(lock);
      }
      std::deque<Pending>& lane = priority_.empty() ? fifo_ : priority_;
      Pending pending = std::move(lane.front());
      lane.pop_front();
      pending.dispatch_order = next_dispatch_order_++;
      ++running_;
      group.push_back(std::move(pending));
      if (options_.max_fusion_group_size > 1) {
        CollectFusionGroupLocked(&group);
      }
    }
    if (group.size() > 1) {
      cv_space_.NotifyAll();  // fusion drained several queue slots at once
      RunGroup(std::move(group));
    } else {
      cv_space_.NotifyOne();  // a queue slot freed up
      RunQuery(std::move(group.front()));
    }
  }
}

void QueryService::CollectFusionGroupLocked(std::vector<Pending>* group) {
  const Pending& head = group->front();
  Executor* executor = executors_[head.dataset].get();
  if (executor->source_backed()) {
    return;  // disk scans stream blocks solo (no shared resident scan)
  }
  const JoinVariant head_variant = executor->ResolveVariant(head.query);
  if (head_variant != JoinVariant::kBoundedRaster &&
      head_variant != JoinVariant::kAccurateRaster) {
    return;  // index variants have no shared point scan to fuse
  }
  // Compatibility is everything that shapes the shared scan: dataset,
  // resolved variant, and canvas. Aggregates, columns, filters, priority,
  // and §5 range requests are free per member.
  const auto compatible = [&](const Pending& p) {
    if (p.dataset != head.dataset) return false;
    if (executor->ResolveVariant(p.query) != head_variant) return false;
    return head_variant == JoinVariant::kBoundedRaster
               ? p.query.epsilon == head.query.epsilon
               : p.query.accurate_canvas_dim ==
                     head.query.accurate_canvas_dim;
  };
  for (std::deque<Pending>* lane : {&priority_, &fifo_}) {
    for (auto it = lane->begin();
         it != lane->end() &&
         group->size() < options_.max_fusion_group_size;) {
      if (compatible(*it)) {
        it->dispatch_order = next_dispatch_order_++;
        ++running_;
        group->push_back(std::move(*it));
        it = lane->erase(it);
      } else {
        ++it;
      }
    }
  }
}

void QueryService::RunQuery(Pending pending) {
  QueryStats stats;
  stats.sequence = pending.sequence;
  stats.dispatch_order = pending.dispatch_order;

  Executor* executor = dataset_executor(pending.dataset);
  // Registration precedes submission validation, so this cannot be null.

  if (cache_ != nullptr && !pending.query.bypass_result_cache) {
    // Cached path. The key is the query's semantic identity (dataset id +
    // version, aggregate/filters/variant/ε/canvas/ranges — execution knobs
    // excluded); a hit — fast lookup or single-flight share of a running
    // identical query — bypasses admission entirely: no grant, no
    // capacity queueing, no device work. Only a miss's leader enters
    // AdmitAndExecute, which fills the grant/counter fields of `stats`.
    Timer fetch;
    const query::CacheKey key = query::MakeCacheKey(
        pending.dataset, executor->dataset_version(), pending.query,
        executor->ResolveVariant(pending.query));
    bool hit = false;
    Result<std::shared_ptr<const QueryResult>> shared = cache_->GetOrCompute(
        key, [&] { return AdmitAndExecute(executor, pending, &stats); },
        &hit,
        // Publish guard: a version bump during the flight means the key no
        // longer describes the live dataset — hand the result to this
        // flight's waiters but do not let later lookups hit it.
        [&] { return executor->dataset_version() == key.version; });
    if (!shared.ok()) {
      Respond(&pending, shared.status(), stats);
      return;
    }
    QueryResult out = *shared.value();
    if (hit) {
      // Fresh per-query stats: a hit must not replay the miss's grants,
      // phase timings, or counter windows (it did none of that work).
      stats.cache_hit = true;
      stats.granted_bytes = 0;
      stats.granted_bytes_per_device.assign(pool_->size(), 0);
      stats.queue_seconds = pending.queued.ElapsedSeconds();
      stats.execute_seconds = fetch.ElapsedSeconds();
      const gpu::CountersSnapshot now = pool_->TotalCounters();
      stats.device_counters_before = now;
      stats.device_counters_after = now;
      out.cache_hit = true;
      out.timing = PhaseTimer();
      out.counters = gpu::CountersSnapshot();
      out.total_seconds = fetch.ElapsedSeconds();
    }
    Respond(&pending, std::move(out), stats);
    return;
  }

  // Sequence the execution before the call: AdmitAndExecute fills `stats`
  // through the pointer, and function-argument evaluation order would
  // otherwise be free to copy `stats` first.
  Result<QueryResult> result = AdmitAndExecute(executor, pending, &stats);
  Respond(&pending, std::move(result), stats);
}

void QueryService::RunGroup(std::vector<Pending> group) {
  Executor* executor = dataset_executor(group[0].dataset);

  // --- Phase A: cache probe; hits leave the group before any admission
  // work. Fusion leaves cache semantics untouched — every member keeps its
  // own semantic key. Accepted trade (docs/SERVICE.md "Fusion groups"):
  // fused members use Lookup/Insert rather than the single-flight
  // GetOrCompute, so two concurrent *groups* containing the same query may
  // both execute it — correctness is unaffected, only deduplication.
  std::vector<Pending> misses;
  std::vector<query::CacheKey> keys;
  std::vector<bool> cacheable;
  misses.reserve(group.size());
  for (Pending& p : group) {
    if (cache_ != nullptr && !p.query.bypass_result_cache) {
      Timer fetch;
      const query::CacheKey key = query::MakeCacheKey(
          p.dataset, executor->dataset_version(), p.query,
          executor->ResolveVariant(p.query));
      if (std::shared_ptr<const QueryResult> shared = cache_->Lookup(key)) {
        // Same scrub as the solo hit path: a hit did no device work and
        // never reports the original miss's grants or counters.
        QueryStats stats;
        stats.sequence = p.sequence;
        stats.dispatch_order = p.dispatch_order;
        stats.cache_hit = true;
        stats.granted_bytes_per_device.assign(pool_->size(), 0);
        stats.queue_seconds = p.queued.ElapsedSeconds();
        stats.execute_seconds = fetch.ElapsedSeconds();
        const gpu::CountersSnapshot now = pool_->TotalCounters();
        stats.device_counters_before = now;
        stats.device_counters_after = now;
        QueryResult out = *shared;
        out.cache_hit = true;
        out.timing = PhaseTimer();
        out.counters = gpu::CountersSnapshot();
        out.total_seconds = fetch.ElapsedSeconds();
        Respond(&p, std::move(out), stats);
        continue;
      }
      misses.push_back(std::move(p));
      keys.push_back(key);
      cacheable.push_back(true);
    } else {
      misses.push_back(std::move(p));
      keys.push_back(query::CacheKey{});
      cacheable.push_back(false);
    }
  }
  if (misses.empty()) return;
  if (misses.size() == 1) {
    // Degenerate group: the solo path, with its single-flight semantics.
    RunQuery(std::move(misses[0]));
    return;
  }

  // --- Phase B: in-group dedupe. Semantically identical members share one
  // fused slot; the slot's first member (its leader) is the one that
  // inserts into the cache. Members that bypass the cache never dedupe.
  std::vector<std::size_t> slot_of(misses.size());
  std::vector<std::size_t> slot_leader;  // member index of each slot
  for (std::size_t i = 0; i < misses.size(); ++i) {
    std::size_t slot = slot_leader.size();
    if (cacheable[i]) {
      for (std::size_t s = 0; s < slot_leader.size(); ++s) {
        if (cacheable[slot_leader[s]] && keys[slot_leader[s]] == keys[i]) {
          slot = s;
          break;
        }
      }
    }
    if (slot == slot_leader.size()) slot_leader.push_back(i);
    slot_of[i] = slot;
  }
  std::vector<SpatialAggQuery> queries;
  queries.reserve(slot_leader.size());
  for (const std::size_t leader : slot_leader) {
    queries.push_back(misses[leader].query);
  }

  const auto fail_all = [&](const Status& status) {
    for (std::size_t i = 0; i < misses.size(); ++i) {
      QueryStats stats;
      stats.sequence = misses[i].sequence;
      stats.dispatch_order = misses[i].dispatch_order;
      stats.fused_group_size = queries.size();
      stats.queue_seconds = misses[i].queued.ElapsedSeconds();
      Respond(&misses[i], status, stats);
    }
  };

  // --- Phase C: fused admission — ONE grant for the whole group, sized by
  // the union upload plan (PlanFusedAdmission), instead of N per-member
  // grants. The group then executes as one shared scan.
  Result<AdmissionPlan> plan = executor->PlanFusedAdmission(queries);
  if (!plan.ok()) {
    fail_all(plan.status());
    return;
  }
  const std::vector<std::size_t> hosted = executor->ShardsPerDevice();
  std::size_t per_shard_grant = 0;
  Result<gpu::PoolReservation> acquired =
      AcquireGrant(plan.value(), hosted, &per_shard_grant);
  if (!acquired.ok()) {
    fail_all(acquired.status());
    return;
  }
  gpu::PoolReservation grant = std::move(acquired).MoveValueUnsafe();
  const std::size_t granted_total = grant.total_bytes();
  std::vector<std::size_t> granted_per_device(pool_->size(), 0);
  for (std::size_t d = 0; d < pool_->size(); ++d) {
    granted_per_device[d] = grant.bytes_on(d);
  }

  for (SpatialAggQuery& q : queries) {
    q.device_memory_cap_bytes = per_shard_grant;
  }
  const gpu::CountersSnapshot before = pool_->TotalCounters();
  Timer exec;
  Result<std::vector<QueryResult>> fused = executor->ExecuteFused(queries);
  const double execute_seconds = exec.ElapsedSeconds();
  const gpu::CountersSnapshot after = pool_->TotalCounters();

  if (grant.active()) {
    grant.Release();
    // Empty critical section pairs with the waiters' locked try/wait cycle
    // so the notify cannot be lost.
    { MutexLock lock(mutex_); }
    cv_capacity_.NotifyAll();
  }

  if (!fused.ok()) {
    fail_all(fused.status());
    return;
  }
  std::vector<QueryResult>& results = fused.value();

  // --- Phase D: demultiplex. Per-member response and cache insert under
  // the member's own key; group-level grant/counter attribution is
  // replicated (the scan was shared — per-member splits would be fiction).
  // The version re-check mirrors the single-flight publish guard: a result
  // computed against version V is never published after a bump.
  for (std::size_t i = 0; i < misses.size(); ++i) {
    QueryResult out = results[slot_of[i]];
    QueryStats stats;
    stats.sequence = misses[i].sequence;
    stats.dispatch_order = misses[i].dispatch_order;
    stats.fused_group_size = queries.size();
    stats.queue_seconds = misses[i].queued.ElapsedSeconds();
    stats.execute_seconds = execute_seconds;
    stats.granted_bytes = granted_total;
    stats.granted_bytes_per_device = granted_per_device;
    stats.device_counters_before = before;
    stats.device_counters_after = after;
    if (cacheable[i] && i == slot_leader[slot_of[i]] &&
        executor->dataset_version() == keys[i].version) {
      cache_->Insert(keys[i], out);
    }
    Respond(&misses[i], std::move(out), stats);
  }
}

Result<gpu::PoolReservation> QueryService::AcquireGrant(
    const AdmissionPlan& plan, const std::vector<std::size_t>& hosted,
    std::size_t* per_shard_grant) {
  *per_shard_grant = 0;
  gpu::PoolReservation grant;
  if (plan.min_bytes == 0) return grant;

  // The try/wait cycle runs under mutex_ so a grant release (which takes
  // mutex_ before notifying) cannot slip between a failed reservation
  // and the wait — no lost wakeups. All-or-nothing acquisition
  // (TryReservePool) plus serialization on mutex_ means two queries can
  // never hold partial multi-device grants and wait on each other. Lock
  // order is always mutex_ → device mutex, never the reverse.
  MutexLock lock(mutex_);
  for (;;) {
    // Placement check: every device must be able to host its shards'
    // minimum footprint even when the query runs alone — otherwise the
    // query can never run and is rejected, not queued. The share cap is
    // evaluated per device and the tightest device bounds the uniform
    // per-shard grant (deterministically sized batches need one cap).
    std::size_t tightest_share = std::numeric_limits<std::size_t>::max();
    Status impossible = Status::OK();
    for (std::size_t d = 0; d < hosted.size(); ++d) {
      if (hosted[d] == 0) continue;
      const std::size_t budget = pool_->device(d)->memory_budget_bytes();
      if (hosted[d] * plan.min_bytes > budget) {
        impossible = Status::CapacityError(
            "query needs " + std::to_string(hosted[d] * plan.min_bytes) +
            " bytes of device memory on device " + std::to_string(d) +
            " (" + std::to_string(hosted[d]) + " shard(s)); budget is " +
            std::to_string(budget));
        break;
      }
      const auto share = static_cast<std::size_t>(
          static_cast<double>(budget) * options_.max_device_share /
          static_cast<double>(hosted[d]));
      tightest_share = std::min(tightest_share, share);
    }
    if (!impossible.ok()) return impossible;
    // Grant policy (per shard): hold the full working set when it fits
    // under the per-device share cap (no batching); otherwise the capped
    // share, floored at the minimum the query can make progress with.
    *per_shard_grant =
        std::min(plan.full_bytes, std::max(tightest_share, plan.min_bytes));

    std::vector<std::size_t> bytes_per_device(hosted.size(), 0);
    for (std::size_t d = 0; d < hosted.size(); ++d) {
      bytes_per_device[d] = hosted[d] * *per_shard_grant;
    }
    Result<gpu::PoolReservation> reservation =
        gpu::TryReservePool(pool_, bytes_per_device);
    if (reservation.ok()) return reservation;
    // Insufficient unreserved budget right now: queue (do not fail)
    // until a running query releases its grants. Bounded wait: grant
    // releases notify cv_capacity_, but budget resizes
    // (set_memory_budget_bytes) and reservations released by non-service
    // holders of the shared devices do not — the timeout re-runs the
    // budget checks so those paths cannot wedge the dispatcher.
    cv_capacity_.WaitFor(lock, std::chrono::milliseconds(100));
  }
}

Result<QueryResult> QueryService::AdmitAndExecute(Executor* executor,
                                                  const Pending& pending,
                                                  QueryStats* stats) {
  // --- Admission: size and reserve per-device memory grants. -------------
  Result<AdmissionPlan> plan = executor->PlanAdmission(pending.query);
  if (!plan.ok()) return plan.status();

  // Placement before the grant: routing, per-shard cache reuse, and
  // replica-aware device selection decide which shards will actually
  // execute and where, so hosted[d] — what device d's grant is multiplied
  // by — covers exactly the executing work. Skipped and cached shards
  // reserve nothing (all-or-nothing reservation over the executing devices
  // only). Unsharded executors report the trivial {1} placement, which
  // reduces everything below to the single-budget policy.
  Result<Executor::ShardPlacement> placed =
      executor->PlanPlacement(pending.query);
  if (!placed.ok()) return placed.status();
  const Executor::ShardPlacement& placement = placed.value();
  if (executor->sharded()) {
    stats->shards_routed = placement.executed;
    stats->shards_skipped = placement.skipped;
    stats->shard_cache_hits = placement.cache_hits;
  }

  std::size_t per_shard_grant = 0;
  Result<gpu::PoolReservation> acquired =
      AcquireGrant(plan.value(), placement.hosted, &per_shard_grant);
  if (!acquired.ok()) return acquired.status();
  gpu::PoolReservation grant = std::move(acquired).MoveValueUnsafe();
  stats->granted_bytes = grant.total_bytes();
  stats->granted_bytes_per_device.resize(pool_->size(), 0);
  for (std::size_t d = 0; d < pool_->size(); ++d) {
    stats->granted_bytes_per_device[d] = grant.bytes_on(d);
  }

  // --- Execution, batched to the per-shard grant. -------------------------
  SpatialAggQuery query = pending.query;
  query.device_memory_cap_bytes = per_shard_grant;
  stats->queue_seconds = pending.queued.ElapsedSeconds();
  stats->device_counters_before = pool_->TotalCounters();
  Timer exec;
  // Always the uncached path: with caching on, this runs as the
  // single-flight leader inside the service's own GetOrCompute — the
  // executor's cache layer must not re-enter it. The placement planned
  // above is reused (the grant stamp changes no routing-relevant field).
  Result<QueryResult> result = executor->ExecuteUncached(query, &placement);
  stats->execute_seconds = exec.ElapsedSeconds();
  stats->device_counters_after = pool_->TotalCounters();

  if (grant.active()) {
    grant.Release();
    // Empty critical section pairs with the waiters' locked try/wait cycle
    // so the notify cannot be lost.
    { MutexLock lock(mutex_); }
    cv_capacity_.NotifyAll();
  }

  if (result.ok()) UpdateShardHeat(executor, placement);
  return result;
}

void QueryService::UpdateShardHeat(
    Executor* executor, const Executor::ShardPlacement& placement) {
  if (!executor->sharded() || options_.replicate_hot_shards == 0) return;

  std::vector<std::vector<std::size_t>> replicas;
  bool install = false;
  {
    MutexLock lock(heat_mutex_);
    ShardHeat& h = shard_heat_[executor];
    const std::size_t num_shards = placement.device_of_shard.size();
    if (h.heat.size() != num_shards) h.heat.assign(num_shards, 0.0);
    const double alpha = std::clamp(options_.shard_heat_alpha, 0.0, 1.0);
    for (std::size_t s = 0; s < num_shards; ++s) {
      // "Visited" = the query needed this shard's rows (executed or served
      // from the partial cache); routing-skipped shards cool down.
      const bool visited = placement.device_of_shard[s] !=
                           Executor::ShardPlacement::kSkipped;
      h.heat[s] = (1.0 - alpha) * h.heat[s] + (visited ? alpha : 0.0);
    }
    const std::uint64_t interval =
        std::max<std::uint64_t>(1, options_.replica_update_interval);
    if (++h.queries % interval == 0) {
      // Top-K by heat (stable sort: ties resolve to the lower shard id, so
      // the map is deterministic for a given query history). The K hottest
      // shards may run on any pool device; placement's least-loaded rule
      // does the actual balancing.
      std::vector<std::size_t> order(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) order[s] = s;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return h.heat[a] > h.heat[b];
                       });
      replicas.assign(num_shards, {});
      const std::size_t k =
          std::min(options_.replicate_hot_shards, num_shards);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t s = order[i];
        for (std::size_t d = 0; d < pool_->size(); ++d) {
          if (d != s % pool_->size()) replicas[s].push_back(d);
        }
      }
      install = true;
    }
  }
  if (install) executor->SetShardReplicas(std::move(replicas));
}

void QueryService::Respond(Pending* pending, Result<QueryResult> result,
                           QueryStats stats) {
  // Accounting first: a client whose future just resolved must not read a
  // stats() snapshot that still lags behind its own completion.
  {
    MutexLock lock(mutex_);
    ++completed_;
    if (!result.ok()) ++failed_;
    if (running_ > 0) --running_;
  }
  pending->promise.set_value(ServiceResponse{std::move(result), stats});
  cv_drain_.NotifyAll();
}

void QueryService::Drain() {
  MutexLock lock(mutex_);
  while (!priority_.empty() || !fifo_.empty() || running_ != 0) {
    cv_drain_.Wait(lock);
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  // Device snapshots take each device's own lock; gather them outside
  // mutex_ to keep the service lock-order (mutex_ → device mutex) trivially
  // acyclic. Cache stats likewise use only the cache's shard locks.
  s.devices = pool_->Utilization();
  if (cache_ != nullptr) s.cache = cache_->stats();
  MutexLock lock(mutex_);
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.failed = failed_;
  s.queue_depth = QueueDepthLocked();
  s.running = running_;
  return s;
}

}  // namespace rj::service
