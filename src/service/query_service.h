/// \file query_service.h
/// \brief Concurrent query service: pool-wide admission control,
/// scheduling, and futures-based results.
///
/// The paper evaluates one query at a time; the production direction
/// (ROADMAP "multi-query throughput", "dataset sharding") needs many
/// client threads sharing a pool of gpu::Device instances without
/// oversubscribing any device's memory budget. QueryService is that
/// admission/isolation layer:
///
///   * a bounded submission queue — Submit() blocks when the queue is full
///     (backpressure), TrySubmit() fails fast with CapacityError;
///   * an admission controller — before a query is dispatched, its
///     device-memory working set (Executor::PlanAdmission, per-shard when
///     the dataset is sharded) is reserved against every device the query
///     places shards on (gpu::PoolReservation: one MemoryReservation per
///     device, acquired all-or-nothing), and the query's point batches are
///     sized to the per-shard grant, so the sum of concurrent queries'
///     allocations can never exceed any device's memory_budget_bytes. A
///     query admitted only when every shard's grant fits its device; one
///     that cannot get its grants *queues* until a running query releases
///     capacity — it does not fail;
///   * a small scheduler — two FIFO lanes (high-priority first) drained by
///     a fixed pool of dispatcher threads; the dispatcher count bounds how
///     many queries execute concurrently;
///   * futures-based results — Submit returns std::future<ServiceResponse>
///     carrying the QueryResult plus per-query accounting (queue/execute
///     wall time, granted bytes per device, pool counter snapshots).
///
/// Results are bitwise identical to a sequential Executor::Execute of the
/// same query: admission only changes batch sizes, sharded scatter-gather
/// merges in fixed shard order, and the raster pipeline's per-pixel blend
/// order is independent of batching (see docs/SERVICE.md for the argument
/// and tests/service/ for the proof).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/point_block_source.h"
#include "data/sharded_table.h"
#include "gpu/device.h"
#include "gpu/device_pool.h"
#include "query/executor.h"
#include "query/query.h"
#include "query/query_spec.h"
#include "query/result.h"
#include "query/result_cache.h"

namespace rj::service {

/// Scheduling lane for a submitted query.
enum class Priority {
  kNormal = 0,  ///< FIFO lane
  kHigh = 1,    ///< drained before the FIFO lane at every dispatch point
};

/// Configuration of a QueryService instance.
struct ServiceOptions {
  /// Dispatcher threads; bounds the number of concurrently executing
  /// queries (0 = hardware concurrency).
  std::size_t num_dispatchers = 0;

  /// Maximum queries waiting in the submission queue (both lanes combined)
  /// before Submit() blocks / TrySubmit() fails.
  std::size_t max_queue_depth = 64;

  /// Per-query cap on the admission grant as a fraction of each device's
  /// budget, so one giant query cannot monopolize a device and starve
  /// concurrency. A query whose minimum footprint exceeds the cap still
  /// gets its minimum (progress beats fairness).
  double max_device_share = 0.5;

  /// Maximum queries fused into one shared-scan execution (1 = fusion
  /// off, the default). When > 1, a dispatcher that pops a raster query
  /// scans the waiting lanes for up to this many *compatible* queries —
  /// same dataset, same resolved variant, same canvas (ε for bounded,
  /// canvas_dim for accurate); aggregates, columns, and filters are free —
  /// and executes them as ONE fused point scan (Executor::ExecuteFused)
  /// under ONE admission grant sized by the group's union upload plan.
  /// Every member's result stays bitwise identical to running it alone,
  /// and fusion is invisible at the wire level (no new response fields).
  /// See docs/SERVICE.md "Fusion groups" for the policy and the
  /// determinism argument.
  std::size_t max_fusion_group_size = 1;

  /// Byte budget of the service-level result cache (0 = caching off).
  /// When on, repeats of a semantically-equal query — execution knobs
  /// excluded — are served from the cache and **bypass admission
  /// entirely**: no device grant, no capacity queueing, no device work;
  /// concurrent identical queries single-flight through one execution.
  /// See docs/SERVICE.md "Result & plan cache".
  std::size_t result_cache_bytes = 0;

  /// Lock shards of the result cache (concurrency of the hit path).
  std::size_t result_cache_shards = 8;

  /// Hot-shard replication (sharded datasets only): the K hottest shards —
  /// by an EWMA over how often recent queries actually visited each shard
  /// (routing-skipped shards don't heat up) — get read replicas on every
  /// pool device, and placement routes each to the least-loaded candidate
  /// device instead of pinning it to its home. 0 = off (home-only
  /// placement). Replication never changes result bits: every device runs
  /// the identical shard join and the merge order is fixed.
  std::size_t replicate_hot_shards = 0;

  /// EWMA smoothing factor for the per-shard heat counters (0..1; higher
  /// = faster reaction to workload shifts).
  double shard_heat_alpha = 0.3;

  /// Re-derive the replica map from the heat counters every this many
  /// sharded executions of a dataset (amortizes the sort; clamped ≥ 1).
  std::uint64_t replica_update_interval = 16;
};

/// Per-submission options.
struct SubmitOptions {
  Priority priority = Priority::kNormal;
};

/// Per-query accounting attached to every response.
struct QueryStats {
  /// Service-wide submission sequence number (admission order).
  std::uint64_t sequence = 0;
  /// Service-wide dispatch order (when a dispatcher picked the query up;
  /// the observable effect of the priority lane).
  std::uint64_t dispatch_order = 0;
  /// Wall time from submission until execution started (queueing plus
  /// waiting for the memory grants).
  double queue_seconds = 0.0;
  /// Wall time of Executor::Execute.
  double execute_seconds = 0.0;
  /// Device memory reserved for this query while it ran, summed across
  /// the pool.
  std::size_t granted_bytes = 0;
  /// The per-device breakdown of granted_bytes, in pool-device order
  /// (zeros on devices the query placed no shards on).
  std::vector<std::size_t> granted_bytes_per_device;
  /// Pool-wide counters snapshotted around execution. Devices are shared,
  /// so the delta (after.DeltaSince(before)) is exact accounting only when
  /// no query overlapped; under concurrency it is pool-level attribution
  /// of the window in which this query ran. On a cache hit both snapshots
  /// are taken at response time (delta zero — a hit does no device work).
  gpu::CountersSnapshot device_counters_before;
  gpu::CountersSnapshot device_counters_after;
  /// True when the response was served from the result cache (fast hit or
  /// single-flight share). Hits report granted_bytes == 0, an all-zero
  /// granted_bytes_per_device, lookup-only execute_seconds, and equal
  /// counter snapshots — never the original miss's execution stats.
  bool cache_hit = false;
  /// Number of distinct queries that executed in the same fused point scan
  /// as this one (1 = executed alone; cache hits always report 1). Fused
  /// members share the group's grant and counter window, replicated here.
  /// C++-visible accounting only — never serialized on the wire; the HTTP
  /// response schema is unchanged and fusion is invisible to clients.
  std::size_t fused_group_size = 1;
  /// Sharded executions only (zero otherwise, including whole-query cache
  /// hits and fused groups): shards that ran a join for this query, shards
  /// the spatial router pruned, and shards served from the per-shard
  /// partial cache. routed + skipped + cache hits == the dataset's shard
  /// count.
  std::size_t shards_routed = 0;
  std::size_t shards_skipped = 0;
  std::size_t shard_cache_hits = 0;
};

/// What a submitted query's future resolves to. `result.status()` carries
/// the stable error-code contract (StatusCode values, IsRetryable,
/// HttpStatusFor, ToJson) shared with the HTTP front end, so C++ clients
/// and network clients classify failures identically.
struct ServiceResponse {
  Result<QueryResult> result;
  QueryStats stats;
};

/// Metadata for one registered dataset (GET /v1/datasets).
struct DatasetInfo {
  std::size_t id = 0;
  std::string name;
  bool sharded = false;
  std::size_t num_shards = 1;
  std::size_t num_points = 0;
  std::size_t num_polygons = 0;
  std::size_t num_attribute_columns = 0;
  std::uint64_t version = 0;
  /// True when the dataset's blocks live on disk (RegisterDatasetFromFile
  /// over a v2 block file): queries stream zone-map-selected blocks
  /// through the disk→host→device pipeline instead of scanning RAM.
  /// Serialized as the "resident" field ("disk"/"memory") on the wire.
  bool disk_resident = false;
};

/// Service-level accounting snapshot (all monotonic except depth/running
/// and the per-device utilization).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< TrySubmit refusals (queue full)
  std::uint64_t completed = 0;  ///< futures fulfilled (ok or error)
  std::uint64_t failed = 0;     ///< completed with a non-OK status
  std::size_t queue_depth = 0;  ///< currently queued, both lanes
  std::size_t running = 0;      ///< currently executing
  /// Per-device budgets/reservations/counters, in pool order (the
  /// scheduler-visibility surface for placement decisions).
  std::vector<gpu::DeviceUtilization> devices;
  /// Result-cache counters (all zero when caching is off).
  query::ResultCacheStats cache;
};

/// Accepts SpatialAggQuery submissions from many client threads and runs
/// them against a shared gpu::DevicePool. Thread-safe throughout; see the
/// file comment for the architecture and docs/SERVICE.md for the policy.
class QueryService {
 public:
  /// Single-device convenience: wraps `device` in a non-owning pool.
  /// `device` must outlive the service; registered datasets must outlive
  /// it too (they are not copied).
  explicit QueryService(gpu::Device* device, ServiceOptions options = {});

  /// Pool service: queries run on the devices their datasets are placed
  /// on (unsharded datasets on the primary device, sharded datasets
  /// across the pool). `pool` must outlive the service.
  explicit QueryService(gpu::DevicePool* pool, ServiceOptions options = {});

  /// Equivalent to Shutdown(): drains every accepted query, then stops the
  /// dispatchers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a (points, polygons) dataset and returns its id. The
  /// per-dataset Executor is cached so preprocessing (triangulation, CPU
  /// index) is shared across every query against the dataset. Runs on the
  /// pool's primary device. Re-registering an already-registered pair
  /// returns the existing id and bumps its dataset version (the caller is
  /// telling us the data changed — cached results for the old version
  /// stop matching).
  /// `name` is the dataset's wire identity (QuerySpec::dataset, the HTTP
  /// /v1/datasets listing); empty defaults to "dataset-<id>". Registering a
  /// *different* table pair under an existing name shadows it: ResolveDataset
  /// returns the latest registration.
  std::size_t RegisterDataset(const PointTable* points,
                              const PolygonSet* polys,
                              std::string name = "");

  /// Mutable-table convenience: caches the table's extent first
  /// (PointTable::CacheExtent — registration is the single-writer-before-
  /// sharing point), so the executor's world computation and every
  /// subsequent Extent() call are O(1), then registers as above.
  std::size_t RegisterDataset(PointTable* points, const PolygonSet* polys,
                              std::string name = "");

  /// Registers a disk-resident dataset from a column-store file
  /// (data::OpenPointBlockSource: v2 block files mmap through
  /// data::BlockFileReader and stream block by block; v1 flat files load
  /// into RAM behind the same interface). The service owns the opened
  /// source; `polys` must outlive the service. Queries run the
  /// disk→host→device pipeline with zone-map pruning
  /// (ExecPolicy::block_pruning) and results bitwise identical to an
  /// in-memory registration of the same rows. Each call opens the file
  /// anew and mints a fresh dataset id (an existing `name` is shadowed,
  /// like re-using a name in RegisterDataset). Fusion groups are never
  /// formed over disk-resident datasets — members execute as individual
  /// block scans.
  Result<std::size_t> RegisterDatasetFromFile(const std::string& path,
                                              const PolygonSet* polys,
                                              std::string name = "");

  /// Registers a sharded dataset: queries scatter across the pool (shard
  /// s on device s mod pool size) and gather through agg::MergePartials.
  /// `shards` and `polys` must outlive the service. Re-registration bumps
  /// the dataset version, like RegisterDataset.
  std::size_t RegisterShardedDataset(const data::ShardedTable* shards,
                                     const PolygonSet* polys,
                                     std::string name = "");

  /// Dataset id for a registered name (latest registration wins when a
  /// name was reused); NotFound otherwise.
  [[nodiscard]] Result<std::size_t> ResolveDataset(
      const std::string& name) const RJ_EXCLUDES(mutex_);

  /// Snapshot of every registered dataset, in id order.
  std::vector<DatasetInfo> ListDatasets() const RJ_EXCLUDES(mutex_);

  /// Bumps `dataset_id`'s version: cached results stop matching and the
  /// next query of each shape re-executes. For out-of-band mutations the
  /// service cannot observe (no-op on an unknown id). Streaming appends
  /// invalidate automatically when the join is wired to the executor's
  /// version counter (Streaming*Join::set_version_counter).
  void InvalidateDataset(std::size_t dataset_id);

  /// The cached executor for a registered dataset (e.g. to warm caches or
  /// run a sequential baseline against the very same preprocessing).
  Executor* dataset_executor(std::size_t dataset_id) RJ_EXCLUDES(mutex_);

  /// Enqueues a query. Blocks while the submission queue is full
  /// (backpressure); the returned future resolves when the query has
  /// executed (or failed validation/admission).
  std::future<ServiceResponse> Submit(std::size_t dataset_id,
                                      const SpatialAggQuery& query,
                                      SubmitOptions options = {})
      RJ_EXCLUDES(mutex_);

  /// Non-blocking Submit: CapacityError when the queue is full.
  Result<std::future<ServiceResponse>> TrySubmit(std::size_t dataset_id,
                                                 const SpatialAggQuery& query,
                                                 SubmitOptions options = {});

  /// Public-API submission: the semantic spec plus an execution policy.
  /// Column references are validated against the dataset at submit; bad
  /// specs resolve the future with InvalidArgument without reaching
  /// admission. The spec's `dataset` name is not consulted — `dataset_id`
  /// (from RegisterDataset/ResolveDataset) is authoritative.
  std::future<ServiceResponse> Submit(std::size_t dataset_id,
                                      const QuerySpec& spec,
                                      const ExecPolicy& policy = {},
                                      SubmitOptions options = {});
  Result<std::future<ServiceResponse>> TrySubmit(std::size_t dataset_id,
                                                 const QuerySpec& spec,
                                                 const ExecPolicy& policy = {},
                                                 SubmitOptions options = {});

  /// Blocks until every accepted query has completed.
  void Drain() RJ_EXCLUDES(mutex_);

  /// Graceful drain: stop accepting (Submit/TrySubmit fail with a
  /// retryable CapacityError from this point on), finish every query
  /// accepted before the cut, then stop the dispatchers. Idempotent and
  /// safe to race with concurrent submissions: a submission either lands
  /// before the cut (its future resolves normally) or observes the
  /// shutdown error — it can never run against torn-down state. The
  /// destructor runs the same implementation.
  void Shutdown() RJ_EXCLUDES(mutex_);

  ServiceStats stats() const RJ_EXCLUDES(mutex_);
  /// The pool's primary device (back-compat accessor).
  gpu::Device* device() const { return pool_->primary(); }
  gpu::DevicePool* pool() const { return pool_; }
  const ServiceOptions& options() const { return options_; }
  /// The service-level result cache (null when result_cache_bytes == 0).
  query::ResultCache* result_cache() const { return cache_.get(); }

 private:
  /// Real constructor: `owned` (may be null) is the internally-created
  /// pool backing the single-device convenience constructor; `pool` (null
  /// = use `owned`) is the caller's pool. Runs before the dispatcher
  /// threads start, so pool_ is set before any query can execute.
  QueryService(std::unique_ptr<gpu::DevicePool> owned, gpu::DevicePool* pool,
               ServiceOptions options);

  /// One queued submission.
  struct Pending {
    std::uint64_t sequence = 0;
    std::uint64_t dispatch_order = 0;
    std::size_t dataset = 0;
    SpatialAggQuery query;
    Priority priority = Priority::kNormal;
    std::promise<ServiceResponse> promise;
    Timer queued;  ///< started at submission (queue_seconds)
  };

  std::future<ServiceResponse> Enqueue(std::size_t dataset_id,
                                       const SpatialAggQuery& query,
                                       SubmitOptions options, bool blocking,
                                       Status* reject_status)
      RJ_EXCLUDES(mutex_);

  void DispatchLoop(std::size_t slot) RJ_EXCLUDES(mutex_);

  /// Wakes the most recently idle dispatcher (MRU / hot-thread dispatch):
  /// under light load consecutive queries land on the same thread, whose
  /// malloc arenas and caches still hold the previous query's working-set
  /// pages — measurably faster than FIFO condvar wakeup rotating every
  /// query onto a cold thread. Caller holds mutex_.
  void WakeOneLocked() RJ_REQUIRES(mutex_);

  /// Admission + execution of one popped query (dispatcher thread).
  void RunQuery(Pending pending);

  /// Scans the waiting lanes (priority first, then FIFO, queue order) for
  /// queries fusion-compatible with group->front() and moves up to
  /// max_fusion_group_size − 1 of them into the group, dispatch-ordered
  /// and counted running. Caller holds mutex_.
  void CollectFusionGroupLocked(std::vector<Pending>* group)
      RJ_REQUIRES(mutex_);

  /// Fused execution of a collected group: per-member cache probe (hits
  /// leave the group), in-group dedupe of semantically identical members,
  /// ONE admission grant sized by Executor::PlanFusedAdmission, one
  /// ExecuteFused scan, then per-member demux / cache insert / respond.
  /// Degenerates to RunQuery when one miss remains.
  void RunGroup(std::vector<Pending> group);

  /// The admission try/wait cycle shared by the solo and fused paths:
  /// places `plan` against the per-device shard counts, waits (bounded)
  /// for pool capacity, and returns the all-or-nothing reservation plus
  /// the uniform per-shard grant (empty reservation and grant 0 when
  /// plan.min_bytes == 0). CapacityError when the plan cannot fit even on
  /// an idle pool.
  Result<gpu::PoolReservation> AcquireGrant(
      const AdmissionPlan& plan, const std::vector<std::size_t>& hosted,
      std::size_t* per_shard_grant) RJ_EXCLUDES(mutex_);

  /// The uncached execution path: plans the shard placement (routing /
  /// per-shard cache / replicas), sizes and reserves the per-device grants
  /// against exactly the executing devices, executes batched to the
  /// per-shard grant, releases, then feeds the placement into the shard
  /// heat tracker. Fills the grant/counter/timing/routing fields of
  /// `stats`. With caching on, this is the single-flight leader's compute
  /// function — followers and hits never enter it (cache hits bypass
  /// admission entirely).
  Result<QueryResult> AdmitAndExecute(Executor* executor,
                                      const Pending& pending,
                                      QueryStats* stats);

  /// EWMA heat update from one executed placement; every
  /// replica_update_interval-th execution of a dataset re-derives its
  /// top-K replica map and installs it on the executor. No-op when
  /// replication is off or the dataset is unsharded.
  void UpdateShardHeat(Executor* executor,
                       const Executor::ShardPlacement& placement)
      RJ_EXCLUDES(heat_mutex_);

  /// Fulfills a pending promise and updates completion accounting.
  void Respond(Pending* pending, Result<QueryResult> result,
               QueryStats stats) RJ_EXCLUDES(mutex_);

  /// Shares the service result cache with executors_[id] under the dataset
  /// id, so whole-query entries and the executor's per-shard partial
  /// entries live in one key space. Caller holds mutex_; no-op with
  /// caching off.
  void AttachCacheLocked(std::size_t id) RJ_REQUIRES(mutex_);

  std::size_t QueueDepthLocked() const RJ_REQUIRES(mutex_) {
    return fifo_.size() + priority_.size();
  }

  /// Backing pool for the single-device constructor (non-owning wrap of
  /// the caller's device); declared before pool_ so pool_ may point at it.
  std::unique_ptr<gpu::DevicePool> owned_pool_;
  gpu::DevicePool* pool_;
  ServiceOptions options_;
  /// Result cache shared by every dataset (keys carry the dataset id);
  /// null when options_.result_cache_bytes == 0.
  std::unique_ptr<query::ResultCache> cache_;

  /// Service lock. Guards the queues, dispatcher bookkeeping, and the
  /// registration tables. Lock order: mutex_ before any device mutex
  /// (AcquireGrant reserves device budgets while holding it), never the
  /// reverse; disjoint from heat_mutex_ (never both held).
  mutable Mutex mutex_;
  CondVar cv_space_;     ///< submitters: queue has room
  CondVar cv_capacity_;  ///< dispatchers: grant released
  CondVar cv_drain_;     ///< Drain(): everything finished

  /// Per-dispatcher wakeup slot; `idle_` is a stack of waiting slots with
  /// the most recently idle dispatcher at the back (see WakeOneLocked).
  /// `wake` is guarded by mutex_ — not annotated because a nested struct
  /// member cannot name the enclosing class's mutex in a capability
  /// expression; every access is inside a mutex_ critical section.
  struct DispatcherSlot {
    CondVar cv;
    bool wake = false;
  };
  std::deque<DispatcherSlot> slots_ RJ_GUARDED_BY(mutex_);
  std::vector<std::size_t> idle_ RJ_GUARDED_BY(mutex_);

  std::vector<std::unique_ptr<Executor>> executors_ RJ_GUARDED_BY(mutex_);
  /// Wire names, parallel to executors_ (id = index).
  std::vector<std::string> dataset_names_ RJ_GUARDED_BY(mutex_);
  /// Per-dataset EWMA shard heat (see ServiceOptions::replicate_hot_shards),
  /// keyed by executor (stable for the service's lifetime); guarded by
  /// heat_mutex_ — its own lock, since heat updates happen on the
  /// execution path, outside mutex_.
  struct ShardHeat {
    std::vector<double> heat;
    std::uint64_t queries = 0;
  };
  Mutex heat_mutex_;
  std::unordered_map<const Executor*, ShardHeat> shard_heat_
      RJ_GUARDED_BY(heat_mutex_);
  /// Block sources opened by RegisterDatasetFromFile, owned for the
  /// service's lifetime (their executors point into them). Not parallel to
  /// executors_ — table/sharded registrations add no entry.
  std::vector<std::unique_ptr<data::PointBlockSource>> owned_sources_
      RJ_GUARDED_BY(mutex_);
  /// Shutdown() body runs exactly once (destructor re-entry, concurrent
  /// callers); later callers block until the first finishes the join.
  std::once_flag shutdown_once_;
  std::deque<Pending> fifo_ RJ_GUARDED_BY(mutex_);
  std::deque<Pending> priority_ RJ_GUARDED_BY(mutex_);
  bool stop_ RJ_GUARDED_BY(mutex_) = false;
  std::uint64_t next_sequence_ RJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_dispatch_order_ RJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t submitted_ RJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ RJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ RJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ RJ_GUARDED_BY(mutex_) = 0;
  std::size_t running_ RJ_GUARDED_BY(mutex_) = 0;

  std::vector<std::thread> dispatchers_;
};

}  // namespace rj::service
