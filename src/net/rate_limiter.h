/// \file rate_limiter.h
/// \brief Per-client token-bucket rate limiting for the HTTP front end.
///
/// Each client key (X-Client-Id header, falling back to peer address) owns
/// a bucket holding up to `burst` tokens refilled at `rate_per_sec`. A
/// request costs one token; an empty bucket means HTTP 429 with a
/// Retry-After hint equal to the time until the next token.
///
/// Time is injected as a double (seconds, any monotonic origin) so tests
/// drive the clock deterministically instead of sleeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace rj::net {

class RateLimiter {
 public:
  struct Options {
    double rate_per_sec = 0.0;  ///< tokens/sec; <= 0 disables limiting
    double burst = 10.0;        ///< bucket capacity (initially full)
    /// Buckets idle long enough to have refilled completely are dropped
    /// on the next sweep so one-shot clients don't accumulate forever.
    std::size_t max_clients = 4096;
  };

  struct Decision {
    bool allowed = true;
    /// When rejected: seconds until one token is available (>= 0).
    double retry_after_seconds = 0.0;
  };

  explicit RateLimiter(Options options) : options_(options) {}

  /// Spends one token from `key`'s bucket at time `now_seconds`.
  Decision Admit(const std::string& key, double now_seconds)
      RJ_EXCLUDES(mutex_);

  /// Buckets currently tracked (after any sweep). For /v1/stats.
  std::size_t num_clients() const RJ_EXCLUDES(mutex_);

  bool enabled() const { return options_.rate_per_sec > 0.0; }
  const Options& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
  };

  void SweepLocked(double now_seconds) RJ_REQUIRES(mutex_);

  Options options_;  ///< immutable after construction
  mutable Mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_ RJ_GUARDED_BY(mutex_);
};

}  // namespace rj::net
