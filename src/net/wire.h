/// \file wire.h
/// \brief v1 response bodies for the HTTP front end (docs/API.md).
///
/// The request side of the wire lives with the query layer
/// (query/query_spec.h: SpecToJson / ParseQueryRequest) because the spec
/// schema is shared by the CLI and C++ embedders too. This file owns the
/// response envelopes, which only network clients see:
///
///   success: {"v":1, "values":[...], "ranges":{...}?, "stats":{...}}
///   error:   {"v":1, "error":{"code":...,"name":...,"retryable":...,
///             "http":...,"message":...}}
///
/// Doubles are serialized with %.17g (see common/json.cc), so a value
/// decoded from the wire is bitwise identical to the double the executor
/// produced; NaN (empty AVG/MIN/MAX groups) crosses as JSON null.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agg/result_range.h"
#include "common/status.h"
#include "service/query_service.h"

namespace rj::net {

/// Client-side view of a decoded success body.
struct DecodedQueryResponse {
  std::vector<double> values;
  ResultRanges ranges;  ///< empty unless the spec asked for ranges
  bool cache_hit = false;
  std::uint64_t sequence = 0;
  double queue_seconds = 0.0;
  double execute_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t granted_bytes = 0;
};

/// Success body for a completed query (response.result must be OK).
std::string QueryResponseJson(const service::ServiceResponse& response);

/// Error body wrapping Status::ToJson().
std::string ErrorJson(const Status& status);

/// Error body plus a sub-second retry hint: the envelope gains a
/// `"retry_after_ms"` field (milliseconds, rounded up, ≥ 0). The
/// Retry-After *header* is spec-bound to whole seconds and rounds every
/// hint up to ≥ 1 s — 20× too coarse for a 50 ms shed window — so
/// limiter/shed responses carry the precise hint in the body while the
/// header stays RFC-compliant. Additive only: clients that read just
/// `error` are unaffected (error envelopes are not schema-strict).
std::string ErrorJson(const Status& status, double retry_after_seconds);

/// Decodes a success body (strict: unknown fields rejected).
Result<DecodedQueryResponse> ParseQueryResponse(const std::string& body);

/// Body for GET /v1/datasets.
std::string DatasetsJson(const std::vector<service::DatasetInfo>& datasets);

/// Body for GET /v1/stats. `server` carries front-end counters rendered
/// under "server" (pass "{}" when serving stats without an HTTP server).
std::string StatsJson(const service::ServiceStats& stats,
                      const std::string& server_json);

}  // namespace rj::net
