#include "net/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace rj::net {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

// Parses "HTTP/1.1 200 OK\r\n<headers>\r\n\r\n" in [0, head_end) of buf.
Status ParseResponseHead(const std::string& buf, std::size_t head_end,
                         HttpClientResponse* out) {
  std::size_t line_end = buf.find("\r\n");
  if (line_end == std::string::npos || line_end > head_end) {
    return Status::IOError("http client: missing status line");
  }
  const std::string status_line = buf.substr(0, line_end);
  std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.compare(0, 5, "HTTP/") != 0) {
    return Status::IOError("http client: malformed status line '" +
                           status_line + "'");
  }
  char* end = nullptr;
  long code = std::strtol(status_line.c_str() + sp1 + 1, &end, 10);
  if (code < 100 || code > 599) {
    return Status::IOError("http client: bad status code in '" +
                           status_line + "'");
  }
  out->status = static_cast<int>(code);

  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) {
      return Status::IOError("http client: malformed header block");
    }
    const std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::IOError("http client: malformed header line");
    }
    out->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                              Trim(line.substr(colon + 1)));
  }
  return Status::OK();
}

}  // namespace

const std::string* HttpClientResponse::FindHeader(
    const std::string& name_lower) const {
  for (const auto& h : headers) {
    if (h.first == name_lower) return &h.second;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string address, int port,
                       double response_timeout_seconds)
    : address_(std::move(address)),
      port_(port),
      response_timeout_seconds_(response_timeout_seconds) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
  carry_.clear();
}

Result<HttpClientResponse> HttpClient::Get(const std::string& path) {
  return Request("GET", path, "", {});
}

Result<HttpClientResponse> HttpClient::Post(
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return Request("POST", path, body, headers);
}

Result<HttpClientResponse> HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::ostringstream wire;
  wire << method << ' ' << path << " HTTP/1.1\r\n";
  wire << "Host: " << address_ << ':' << port_ << "\r\n";
  for (const auto& h : headers) {
    wire << h.first << ": " << h.second << "\r\n";
  }
  if (!body.empty() || method == "POST") {
    wire << "Content-Type: application/json\r\n";
    wire << "Content-Length: " << body.size() << "\r\n";
  }
  wire << "\r\n" << body;
  const std::string request = wire.str();

  const bool had_connection = fd_ >= 0;
  Result<HttpClientResponse> response = RoundTrip(request);
  // The reused keep-alive connection may have been closed by the server
  // (drain, idle timeout) between requests; retry once on a fresh one.
  // Gated twice: (a) zero response bytes arrived — a drop *after* first
  // byte means the server may have executed the request, and replaying it
  // would double-submit; (b) the request is replayable — GET, or a POST
  // the caller declared side-effect-free (set_replay_safe_posts).
  const bool replayable = method == "GET" || replay_safe_posts_;
  if (!response.ok() && had_connection && !response_bytes_received_ &&
      replayable) {
    Close();
    response = RoundTrip(request);
  }
  if (!response.ok()) Close();
  return response;
}

Result<HttpClientResponse> HttpClient::RoundTrip(const std::string& wire) {
  if (fd_ < 0) {
    RJ_ASSIGN_OR_RETURN(fd_, ConnectTcp(address_, port_));
    carry_.clear();
  }
  // Leftover bytes from the previous response count as received: they are
  // this connection's response stream, so a failure past this point is
  // never a clean "nothing happened" and must not be replayed.
  response_bytes_received_ = !carry_.empty();
  RJ_RETURN_NOT_OK(WriteAll(fd_, wire));
  Result<HttpClientResponse> response = ReadResponse();
  if (response.ok()) {
    const std::string* conn = response.value().FindHeader("connection");
    if (conn != nullptr && *conn == "close") Close();
  }
  return response;
}

Result<HttpClientResponse> HttpClient::ReadResponse() {
  // Poll in short slices so the deadline is enforced even when the server
  // trickles bytes.
  RJ_RETURN_NOT_OK(SetRecvTimeout(fd_, 0.2));
  const double deadline = NowSeconds() + response_timeout_seconds_;

  HttpClientResponse out;
  std::string& buf = carry_;
  std::size_t head_end = std::string::npos;
  std::size_t body_len = 0;
  bool head_parsed = false;
  char chunk[8192];

  while (true) {
    if (!head_parsed) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        RJ_RETURN_NOT_OK(ParseResponseHead(buf, head_end + 2, &out));
        head_parsed = true;
        if (const std::string* cl = out.FindHeader("content-length")) {
          char* end = nullptr;
          errno = 0;
          unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
          if (errno != 0 || end == cl->c_str() || *end != '\0') {
            return Status::IOError("http client: bad Content-Length");
          }
          body_len = static_cast<std::size_t>(v);
        }
      }
    }
    if (head_parsed) {
      const std::size_t total = head_end + 4 + body_len;
      if (buf.size() >= total) {
        out.body = buf.substr(head_end + 4, body_len);
        buf.erase(0, total);
        return out;
      }
    }

    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      response_bytes_received_ = true;
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("http client: connection closed mid-response");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (NowSeconds() > deadline) {
        return Status::IOError("http client: response timed out");
      }
      continue;
    }
    return Status::IOError(std::string("http client: recv failed: ") +
                           std::strerror(errno));
  }
}

}  // namespace rj::net
