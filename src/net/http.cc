#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace rj::net {

namespace {

// How often a blocked read wakes up to poll `cancelled`. Short enough that
// a draining server stops within a human-imperceptible delay, long enough
// that idle keep-alive connections cost ~5 wakeups/sec.
constexpr double kPollIntervalSeconds = 0.2;

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Parses the head (request line + headers) in [0, head_end) of `buf`.
// Does not touch the body.
Status ParseHead(const std::string& buf, std::size_t head_end,
                 HttpRequest* out) {
  std::size_t line_end = buf.find("\r\n");
  if (line_end == std::string::npos || line_end > head_end) {
    return Status::InvalidArgument("http: missing request line");
  }
  const std::string request_line = buf.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  out->method = request_line.substr(0, sp1);
  out->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = request_line.substr(sp2 + 1);
  if (out->method.empty() || out->target.empty() || out->target[0] != '/') {
    return Status::InvalidArgument("http: malformed request line");
  }
  if (out->version != "HTTP/1.1" && out->version != "HTTP/1.0") {
    return Status::InvalidArgument("http: unsupported version '" +
                                   out->version + "'");
  }

  constexpr std::size_t kMaxHeaders = 100;
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) {
      return Status::InvalidArgument("http: malformed header block");
    }
    const std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("http: malformed header line");
    }
    if (out->headers.size() >= kMaxHeaders) {
      return Status::InvalidArgument("http: too many headers");
    }
    out->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                              Trim(line.substr(colon + 1)));
  }
  return Status::OK();
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& name_lower) const {
  for (const auto& h : headers) {
    if (h.first == name_lower) return &h.second;
  }
  return nullptr;
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse& HttpResponse::SetHeader(std::string name, std::string value) {
  headers.emplace_back(std::move(name), std::move(value));
  return *this;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

Result<ReadOutcome> ReadHttpRequest(int fd, const HttpLimits& limits,
                                    double idle_timeout_seconds,
                                    const std::function<bool()>& cancelled,
                                    std::string* carry, HttpRequest* out) {
  *out = HttpRequest();
  std::string& buf = *carry;
  RJ_RETURN_NOT_OK(SetRecvTimeout(fd, kPollIntervalSeconds));

  const double start = NowSeconds();
  std::size_t head_end = std::string::npos;
  std::size_t body_len = 0;
  bool head_parsed = false;
  char chunk[4096];

  while (true) {
    // Parse as soon as the buffered bytes suffice; only recv when they
    // don't (carry-over from a pipelined peer may hold a full request).
    if (!head_parsed) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        RJ_RETURN_NOT_OK(ParseHead(buf, head_end + 2, out));
        head_parsed = true;
        if (const std::string* cl = out->FindHeader("content-length")) {
          char* end = nullptr;
          errno = 0;
          unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
          if (errno != 0 || end == cl->c_str() || *end != '\0') {
            return Status::InvalidArgument("http: bad Content-Length");
          }
          body_len = static_cast<std::size_t>(v);
          if (body_len > limits.max_body_bytes) {
            return Status::CapacityError(
                "http: body exceeds limit of " +
                std::to_string(limits.max_body_bytes) + " bytes");
          }
        } else if (out->FindHeader("transfer-encoding") != nullptr) {
          return Status::InvalidArgument(
              "http: chunked transfer encoding is not supported");
        }
      } else if (buf.size() > limits.max_head_bytes) {
        return Status::CapacityError(
            "http: request head exceeds limit of " +
            std::to_string(limits.max_head_bytes) + " bytes");
      }
    }
    if (head_parsed) {
      const std::size_t total = head_end + 4 + body_len;
      if (buf.size() >= total) {
        out->body = buf.substr(head_end + 4, body_len);
        buf.erase(0, total);
        return ReadOutcome::kRequest;
      }
    }

    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (buf.empty() && !head_parsed) return ReadOutcome::kEof;
      return Status::IOError("http: connection closed mid-request");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (cancelled && cancelled()) return ReadOutcome::kCancelled;
      // The idle timeout only applies while waiting for a request to
      // *start*; once bytes arrive we wait for the peer to finish.
      if (buf.empty() && !head_parsed &&
          NowSeconds() - start > idle_timeout_seconds) {
        return ReadOutcome::kTimeout;
      }
      continue;
    }
    return Status::IOError(std::string("http: recv failed: ") +
                           std::strerror(errno));
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' '
      << HttpStatusText(response.status) << "\r\n";
  out << "Content-Type: " << response.content_type << "\r\n";
  out << "Content-Length: " << response.body.size() << "\r\n";
  out << "Connection: " << (response.close ? "close" : "keep-alive")
      << "\r\n";
  for (const auto& h : response.headers) {
    out << h.first << ": " << h.second << "\r\n";
  }
  out << "\r\n" << response.body;
  return out.str();
}

Status WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(std::string("http: send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<int> ListenTcp(const std::string& address, int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("http: socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("http: bad bind address '" + address +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError(std::string("http: bind failed: ") +
                               std::strerror(errno));
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Status::IOError(std::string("http: listen failed: ") +
                               std::strerror(errno));
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<int> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError(std::string("http: getsockname failed: ") +
                           std::strerror(errno));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& address, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("http: socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("http: bad address '" + address + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status s = Status::IOError(std::string("http: connect failed: ") +
                               std::strerror(errno));
    CloseFd(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetRecvTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - static_cast<double>(tv.tv_sec)) *
                                 1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(std::string("http: SO_RCVTIMEO failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace rj::net
