/// \file client.h
/// \brief Minimal blocking HTTP/1.1 client for the v1 front end.
///
/// Used by the loopback end-to-end tests and by bench_traffic_shaped's
/// open-loop workers. One HttpClient owns one connection and reuses it
/// across requests (keep-alive); a server "Connection: close" (or any
/// socket error) drops the connection and the next request reconnects,
/// so callers can hammer a draining or shedding server without managing
/// sockets themselves.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/http.h"

namespace rj::net {

/// One parsed response. Header names lowercased, like HttpRequest.
struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (lowercase) name, or nullptr.
  const std::string* FindHeader(const std::string& name_lower) const;
};

class HttpClient {
 public:
  /// Does not connect; the first request does.
  HttpClient(std::string address, int port,
             double response_timeout_seconds = 60.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Result<HttpClientResponse> Get(const std::string& path);
  Result<HttpClientResponse> Post(
      const std::string& path, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Declares this client's POSTs safe to replay, enabling the stale
  /// keep-alive reconnect-and-retry for them. POSTs are NOT retried by
  /// default: a retry after the server already received the request
  /// executes it twice, and the client cannot know the request is
  /// side-effect-free. POST /v1/query is read-only, so query workloads
  /// opt in. Retries (GET or opted-in POST) only ever happen when zero
  /// response bytes arrived — a failure after first byte surfaces as an
  /// error instead of a blind replay.
  void set_replay_safe_posts(bool value) { replay_safe_posts_ = value; }

  /// Drops the connection (next request reconnects).
  void Close();

 private:
  Result<HttpClientResponse> Request(
      const std::string& method, const std::string& path,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers);
  Result<HttpClientResponse> RoundTrip(const std::string& wire);
  Result<HttpClientResponse> ReadResponse();

  std::string address_;
  int port_;
  double response_timeout_seconds_;
  bool replay_safe_posts_ = false;
  int fd_ = -1;
  std::string carry_;  ///< bytes past the previous response
  /// Whether any bytes of the current attempt's response arrived (the
  /// replay gate: a mid-response drop is never silently retried).
  bool response_bytes_received_ = false;
};

}  // namespace rj::net
