/// \file server.h
/// \brief The HTTP front end: a generic blocking-socket server plus the
/// QueryServer that wires the v1 protocol onto service::QueryService.
///
/// Architecture (bottom-up):
///
///   HttpServer — accept thread + a ThreadPool of connection handlers.
///   Each accepted connection occupies one worker for its whole keep-alive
///   lifetime, so admission is trivial: when `max_connections` handlers
///   are busy the accept thread sheds the connection immediately with a
///   canned 503 + Retry-After instead of letting it queue unserved
///   (fail fast beats unbounded buffering at the edge — the same policy
///   QueryService::TrySubmit applies one layer down). Shutdown() is a
///   graceful drain: stop accepting, let in-flight requests finish (their
///   responses carry "Connection: close"), interrupt idle keep-alive
///   reads via the poll hook, then join.
///
///   QueryServer — routes
///     POST /v1/query     submit a v1 QueryRequest, await the result
///     GET  /v1/datasets  registered datasets
///     GET  /v1/stats     service + front-end counters
///     GET  /healthz      liveness ("ok" / 503 "draining")
///   with per-client token-bucket rate limiting (429) ahead of
///   QueryService::TrySubmit load shedding (503). Both reject bodies
///   carry the stable error-code JSON from Status::ToJson plus a
///   Retry-After header, so clients implement one backoff path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "net/http.h"
#include "net/rate_limiter.h"
#include "service/query_service.h"

namespace rj::net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read back via port())
  /// Connection-handler threads; 0 = max(4, hardware_concurrency).
  std::size_t num_workers = 0;
  /// Concurrent connections before the accept thread sheds with 503;
  /// 0 = num_workers (every accepted connection gets a worker at once).
  std::size_t max_connections = 0;
  HttpLimits limits;
  /// Idle keep-alive connections are closed after this long.
  double keep_alive_timeout_seconds = 5.0;
  /// Retry-After value on shed (503) responses.
  double shed_retry_after_seconds = 1.0;
};

/// Front-end counters (all monotonic; snapshot via stats()).
struct HttpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_shed = 0;  ///< 503 at the accept gate
  std::uint64_t requests = 0;          ///< parsed requests dispatched
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  ///< Shutdown()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact (method, path). Must precede Start().
  void Route(std::string method, std::string path, Handler handler);

  /// Binds, listens, and spawns the accept thread.
  Status Start();

  /// Bound port (valid after Start(); resolves ephemeral port 0).
  int port() const { return port_; }

  /// Graceful drain; idempotent and safe concurrently with itself.
  void Shutdown() RJ_EXCLUDES(mutex_);

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  HttpServerStats stats() const RJ_EXCLUDES(mutex_);

 private:
  void AcceptLoop() RJ_EXCLUDES(mutex_);
  void HandleConnection(int fd, std::string peer) RJ_EXCLUDES(mutex_);
  HttpResponse Dispatch(const HttpRequest& request);
  void CountResponse(int status) RJ_EXCLUDES(mutex_);

  HttpServerOptions options_;
  std::map<std::pair<std::string, std::string>, Handler> routes_;

  /// Atomic because the accept thread reads it on every accept() while
  /// Shutdown() concurrently closes it and stores -1 (the designed wakeup
  /// path); Shutdown claims the fd with exchange(-1) so it closes once.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;
  bool started_ = false;

  mutable Mutex mutex_;
  CondVar cv_idle_;  ///< Shutdown(): all connection handlers retired
  std::size_t active_connections_ RJ_GUARDED_BY(mutex_) = 0;
  HttpServerStats stats_ RJ_GUARDED_BY(mutex_);
};

struct QueryServerOptions {
  HttpServerOptions http;
  /// Per-client token bucket on POST /v1/query; rate <= 0 disables.
  double rate_limit_qps = 0.0;
  double rate_limit_burst = 10.0;
  /// Retry-After on 503 when QueryService::TrySubmit sheds.
  double shed_retry_after_seconds = 1.0;
};

/// v1 protocol on top of a caller-owned QueryService. The service is not
/// shut down by the server — callers that want a full drain stop the
/// server first (no new submissions), then the service (finish accepted
/// work).
class QueryServer {
 public:
  QueryServer(service::QueryService* service, QueryServerOptions options = {});

  Status Start();
  int port() const { return http_.port(); }
  void Shutdown() { http_.Shutdown(); }

  HttpServerStats http_stats() const { return http_.stats(); }

  /// Queries rejected by the rate limiter (429s).
  std::uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }
  /// Queries shed because TrySubmit refused (503s).
  std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleDatasets(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  std::string ServerStatsJson() const;

  service::QueryService* service_;
  QueryServerOptions options_;
  RateLimiter limiter_;
  HttpServer http_;
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// Formats a Retry-After header value (whole seconds, >= 1).
std::string RetryAfterValue(double seconds);

}  // namespace rj::net
