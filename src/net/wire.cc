#include "net/wire.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/json.h"
#include "query/query_spec.h"

namespace rj::net {

namespace {

json::Value IntervalsToJson(const std::vector<ResultInterval>& intervals) {
  json::Value arr = json::Value::Array();
  for (const ResultInterval& iv : intervals) {
    json::Value pair = json::Value::Array();
    pair.Append(json::Value::Number(iv.lower));
    pair.Append(json::Value::Number(iv.upper));
    arr.Append(std::move(pair));
  }
  return arr;
}

Status SchemaError(const std::string& message) {
  return Status::InvalidArgument("v1 query response: " + message);
}

Result<double> ReadWireDouble(const json::Value& v, const char* what) {
  if (v.is_null()) return std::numeric_limits<double>::quiet_NaN();
  if (!v.is_number()) return SchemaError(std::string(what) + " must be a number");
  return v.AsNumber();
}

Result<std::vector<ResultInterval>> ParseIntervals(const json::Value& v,
                                                   const char* what) {
  if (!v.is_array()) return SchemaError(std::string(what) + " must be an array");
  std::vector<ResultInterval> out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const json::Value& pair = v[i];
    if (!pair.is_array() || pair.size() != 2) {
      return SchemaError(std::string(what) + "[" + std::to_string(i) +
                         "] must be a [lower, upper] pair");
    }
    ResultInterval iv;
    RJ_ASSIGN_OR_RETURN(iv.lower, ReadWireDouble(pair[0], what));
    RJ_ASSIGN_OR_RETURN(iv.upper, ReadWireDouble(pair[1], what));
    out.push_back(iv);
  }
  return out;
}

}  // namespace

std::string QueryResponseJson(const service::ServiceResponse& response) {
  const QueryResult& result = response.result.value();

  json::Value root = json::Value::Object();
  root.Set("v", json::Value::Number(kQuerySchemaVersion));

  json::Value values = json::Value::Array();
  for (double v : result.values) values.Append(json::Value::Number(v));
  root.Set("values", std::move(values));

  if (!result.ranges.loose.empty() || !result.ranges.expected.empty()) {
    json::Value ranges = json::Value::Object();
    ranges.Set("loose", IntervalsToJson(result.ranges.loose));
    ranges.Set("expected", IntervalsToJson(result.ranges.expected));
    root.Set("ranges", std::move(ranges));
  }

  json::Value stats = json::Value::Object();
  stats.Set("cache_hit", json::Value::Bool(response.stats.cache_hit));
  stats.Set("sequence",
            json::Value::Number(static_cast<double>(response.stats.sequence)));
  stats.Set("queue_seconds",
            json::Value::Number(response.stats.queue_seconds));
  stats.Set("execute_seconds",
            json::Value::Number(response.stats.execute_seconds));
  stats.Set("total_seconds", json::Value::Number(result.total_seconds));
  stats.Set("granted_bytes",
            json::Value::Number(
                static_cast<double>(response.stats.granted_bytes)));
  root.Set("stats", std::move(stats));

  return root.Serialize();
}

std::string ErrorJson(const Status& status) {
  // Status::ToJson already renders a complete object; splice it in rather
  // than re-parsing it through json::Value.
  return "{\"v\":1,\"error\":" + status.ToJson() + "}";
}

std::string ErrorJson(const Status& status, double retry_after_seconds) {
  // Round up so the client never retries early, with a sub-microsecond
  // slack absorbing binary-fraction noise (0.05 s must render 50, not 51).
  const long long ms = static_cast<long long>(
      std::ceil(std::max(retry_after_seconds, 0.0) * 1000.0 - 1e-6));
  return "{\"v\":1,\"error\":" + status.ToJson() +
         ",\"retry_after_ms\":" + std::to_string(ms) + "}";
}

Result<DecodedQueryResponse> ParseQueryResponse(const std::string& body) {
  RJ_ASSIGN_OR_RETURN(json::Value root, json::Parse(body));
  if (!root.is_object()) return SchemaError("body must be an object");

  DecodedQueryResponse out;
  bool saw_version = false;
  for (const auto& member : root.members()) {
    const std::string& key = member.first;
    const json::Value& value = member.second;
    if (key == "v") {
      if (!value.is_number() || value.AsNumber() != kQuerySchemaVersion) {
        return SchemaError("unsupported schema version");
      }
      saw_version = true;
    } else if (key == "values") {
      if (!value.is_array()) return SchemaError("'values' must be an array");
      out.values.reserve(value.size());
      for (std::size_t i = 0; i < value.size(); ++i) {
        RJ_ASSIGN_OR_RETURN(double d, ReadWireDouble(value[i], "values"));
        out.values.push_back(d);
      }
    } else if (key == "ranges") {
      if (!value.is_object()) return SchemaError("'ranges' must be an object");
      for (const auto& rm : value.members()) {
        if (rm.first == "loose") {
          RJ_ASSIGN_OR_RETURN(out.ranges.loose,
                              ParseIntervals(rm.second, "ranges.loose"));
        } else if (rm.first == "expected") {
          RJ_ASSIGN_OR_RETURN(out.ranges.expected,
                              ParseIntervals(rm.second, "ranges.expected"));
        } else {
          return SchemaError("unknown field 'ranges." + rm.first + "'");
        }
      }
    } else if (key == "stats") {
      if (!value.is_object()) return SchemaError("'stats' must be an object");
      for (const auto& sm : value.members()) {
        const json::Value& sv = sm.second;
        if (sm.first == "cache_hit") {
          if (!sv.is_bool()) return SchemaError("'stats.cache_hit' must be a bool");
          out.cache_hit = sv.AsBool();
        } else if (sm.first == "sequence") {
          if (!sv.is_number()) return SchemaError("'stats.sequence' must be a number");
          out.sequence = static_cast<std::uint64_t>(sv.AsNumber());
        } else if (sm.first == "queue_seconds") {
          RJ_ASSIGN_OR_RETURN(out.queue_seconds,
                              ReadWireDouble(sv, "stats.queue_seconds"));
        } else if (sm.first == "execute_seconds") {
          RJ_ASSIGN_OR_RETURN(out.execute_seconds,
                              ReadWireDouble(sv, "stats.execute_seconds"));
        } else if (sm.first == "total_seconds") {
          RJ_ASSIGN_OR_RETURN(out.total_seconds,
                              ReadWireDouble(sv, "stats.total_seconds"));
        } else if (sm.first == "granted_bytes") {
          if (!sv.is_number()) return SchemaError("'stats.granted_bytes' must be a number");
          out.granted_bytes = static_cast<std::uint64_t>(sv.AsNumber());
        } else {
          return SchemaError("unknown field 'stats." + sm.first + "'");
        }
      }
    } else {
      return SchemaError("unknown field '" + key + "'");
    }
  }
  if (!saw_version) return SchemaError("missing field 'v'");
  return out;
}

std::string DatasetsJson(const std::vector<service::DatasetInfo>& datasets) {
  json::Value root = json::Value::Object();
  root.Set("v", json::Value::Number(kQuerySchemaVersion));
  json::Value arr = json::Value::Array();
  for (const service::DatasetInfo& d : datasets) {
    json::Value e = json::Value::Object();
    e.Set("id", json::Value::Number(static_cast<double>(d.id)));
    e.Set("name", json::Value::Str(d.name));
    e.Set("sharded", json::Value::Bool(d.sharded));
    e.Set("resident", json::Value::Str(d.disk_resident ? "disk" : "memory"));
    e.Set("shards", json::Value::Number(static_cast<double>(d.num_shards)));
    e.Set("points", json::Value::Number(static_cast<double>(d.num_points)));
    e.Set("polygons",
          json::Value::Number(static_cast<double>(d.num_polygons)));
    e.Set("attribute_columns",
          json::Value::Number(static_cast<double>(d.num_attribute_columns)));
    e.Set("version", json::Value::Number(static_cast<double>(d.version)));
    arr.Append(std::move(e));
  }
  root.Set("datasets", std::move(arr));
  return root.Serialize();
}

std::string StatsJson(const service::ServiceStats& stats,
                      const std::string& server_json) {
  json::Value service = json::Value::Object();
  service.Set("submitted",
              json::Value::Number(static_cast<double>(stats.submitted)));
  service.Set("rejected",
              json::Value::Number(static_cast<double>(stats.rejected)));
  service.Set("completed",
              json::Value::Number(static_cast<double>(stats.completed)));
  service.Set("failed",
              json::Value::Number(static_cast<double>(stats.failed)));
  service.Set("queue_depth",
              json::Value::Number(static_cast<double>(stats.queue_depth)));
  service.Set("running",
              json::Value::Number(static_cast<double>(stats.running)));

  json::Value devices = json::Value::Array();
  for (const gpu::DeviceUtilization& d : stats.devices) {
    json::Value e = json::Value::Object();
    e.Set("budget_bytes",
          json::Value::Number(static_cast<double>(d.budget_bytes)));
    e.Set("allocated_bytes",
          json::Value::Number(static_cast<double>(d.allocated_bytes)));
    e.Set("reserved_bytes",
          json::Value::Number(static_cast<double>(d.reserved_bytes)));
    e.Set("peak_reserved_bytes",
          json::Value::Number(static_cast<double>(d.peak_reserved_bytes)));
    devices.Append(std::move(e));
  }
  service.Set("devices", std::move(devices));

  json::Value cache = json::Value::Object();
  cache.Set("hits", json::Value::Number(static_cast<double>(stats.cache.hits)));
  cache.Set("misses",
            json::Value::Number(static_cast<double>(stats.cache.misses)));
  cache.Set("inserts",
            json::Value::Number(static_cast<double>(stats.cache.inserts)));
  cache.Set("evictions",
            json::Value::Number(static_cast<double>(stats.cache.evictions)));
  cache.Set("shared_flights",
            json::Value::Number(
                static_cast<double>(stats.cache.shared_flights)));
  cache.Set("entries",
            json::Value::Number(static_cast<double>(stats.cache.entries)));
  cache.Set("bytes_used",
            json::Value::Number(static_cast<double>(stats.cache.bytes_used)));
  service.Set("cache", std::move(cache));

  json::Value root = json::Value::Object();
  root.Set("v", json::Value::Number(kQuerySchemaVersion));
  root.Set("service", std::move(service));
  std::string body = root.Serialize();
  // Graft the pre-rendered server object in before the closing brace so
  // the front end's counters don't need a json::Value round-trip.
  body.pop_back();
  body += ",\"server\":" + server_json + "}";
  return body;
}

}  // namespace rj::net
