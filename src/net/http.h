/// \file http.h
/// \brief Dependency-free HTTP/1.1 primitives over blocking POSIX sockets.
///
/// Scope is exactly what the v1 protocol needs (docs/API.md): request
/// parsing with Content-Length bodies (no chunked transfer), keep-alive
/// connections, bounded header/body sizes so hostile input cannot balloon
/// memory, and a cancellation hook so a draining server can interrupt a
/// blocked read without closing the socket mid-request. TLS, compression,
/// and HTTP/2 are deliberately out of scope — the front end targets a
/// trusted edge proxy doing those.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rj::net {

/// One parsed request. Header names are lowercased at parse (HTTP headers
/// are case-insensitive); values keep their bytes.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (uppercase as received)
  std::string target;   ///< origin-form path, e.g. "/v1/query"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Peer address ("ip:port"), filled by the server accept path — the
  /// default rate-limiting key when no X-Client-Id header is present.
  std::string peer;

  /// First header with this (lowercase) name, or nullptr.
  const std::string* FindHeader(const std::string& name_lower) const;
};

/// One response to serialize. Content-Length, Content-Type, and Connection
/// headers are emitted automatically.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (e.g. Retry-After). Names used verbatim.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Force "Connection: close" (also set by the server while draining).
  bool close = false;

  static HttpResponse Json(int status, std::string body);
  HttpResponse& SetHeader(std::string name, std::string value);
};

/// Reason phrase for the status codes the protocol emits.
const char* HttpStatusText(int status);

/// Input-size bounds enforced by ReadHttpRequest.
struct HttpLimits {
  std::size_t max_head_bytes = 16 * 1024;   ///< request line + headers
  std::size_t max_body_bytes = 1024 * 1024; ///< Content-Length ceiling
};

/// Outcome classification for one read request (beyond Status).
enum class ReadOutcome {
  kRequest,    ///< a complete request was parsed
  kEof,        ///< peer closed cleanly before sending a new request
  kCancelled,  ///< `cancelled` returned true while waiting
  kTimeout,    ///< idle longer than `idle_timeout_seconds`
};

/// Reads one HTTP/1.1 request from `fd` (blocking, with a short SO_RCVTIMEO
/// so `cancelled` is polled a few times per second). `carry` holds bytes
/// read past the end of a previous request on the same connection
/// (pipelining) and must persist across calls for one connection.
///
/// Status is OK for all four outcomes above; InvalidArgument = malformed
/// request (respond 400, close), CapacityError = limits exceeded (respond
/// 413, close), IOError = socket failure (just close).
Result<ReadOutcome> ReadHttpRequest(int fd, const HttpLimits& limits,
                                    double idle_timeout_seconds,
                                    const std::function<bool()>& cancelled,
                                    std::string* carry, HttpRequest* out);

/// Serializes `response` (status line, automatic headers, body).
std::string SerializeResponse(const HttpResponse& response);

/// Writes the whole buffer; IOError on failure.
Status WriteAll(int fd, const std::string& data);

/// Creates a listening TCP socket bound to address:port (port 0 =
/// ephemeral; SO_REUSEADDR set). Returns the fd.
Result<int> ListenTcp(const std::string& address, int port, int backlog);

/// The port a bound socket listens on (resolves ephemeral port 0).
Result<int> LocalPort(int fd);

/// Blocking connect to address:port. Returns the fd.
Result<int> ConnectTcp(const std::string& address, int port);

/// Sets SO_RCVTIMEO (used by both server reads and the client).
Status SetRecvTimeout(int fd, double seconds);

/// Close that ignores EINTR (never throws, safe on -1).
void CloseFd(int fd);

}  // namespace rj::net
