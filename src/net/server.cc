#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>

#include "net/wire.h"
#include "query/query_spec.h"

namespace rj::net {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpResponse ErrorResponse(const Status& status) {
  return HttpResponse::Json(HttpStatusFor(status.code()),
                            ErrorJson(status));
}

}  // namespace

std::string RetryAfterValue(double seconds) {
  long whole = static_cast<long>(std::ceil(std::max(seconds, 1.0)));
  return std::to_string(whole);
}

// ---------------------------------------------------------------------------
// HttpServer

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) {
    options_.num_workers =
        std::max<std::size_t>(4, std::thread::hardware_concurrency());
  }
  if (options_.max_connections == 0) {
    options_.max_connections = options_.num_workers;
  }
}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Route(std::string method, std::string path,
                       Handler handler) {
  routes_[{std::move(method), std::move(path)}] = std::move(handler);
}

Status HttpServer::Start() {
  if (started_) return Status::Internal("http: server already started");
  RJ_ASSIGN_OR_RETURN(
      listen_fd_,
      ListenTcp(options_.bind_address, options_.port,
                static_cast<int>(options_.max_connections) + 16));
  Result<int> port = LocalPort(listen_fd_);
  if (!port.ok()) {
    CloseFd(listen_fd_.exchange(-1));
    return port.status();
  }
  port_ = port.value();
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void HttpServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    draining_.store(true, std::memory_order_release);
    // Claim the fd before closing (exchange, not read-then-write): the
    // accept thread loads listen_fd_ concurrently, and a plain int here
    // was a data race with that reader.
    const int fd = listen_fd_.exchange(-1);
    if (fd >= 0) {
      // shutdown() wakes the blocked accept() even on platforms where
      // close() alone does not; the loop then observes draining_.
      ::shutdown(fd, SHUT_RDWR);
      CloseFd(fd);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      // In-flight handlers poll draining_ between requests and their
      // blocked reads wake within the poll interval, so this converges.
      MutexLock lock(mutex_);
      while (active_connections_ != 0) cv_idle_.Wait(lock);
    }
    if (pool_ != nullptr) pool_->Wait();
  });
}

HttpServerStats HttpServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void HttpServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    sockaddr_in peer_addr;
    socklen_t peer_len = sizeof(peer_addr);
    int fd = ::accept(listen_fd_.load(std::memory_order_acquire),
                      reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listen socket closed by Shutdown (or a hard error): stop.
      return;
    }

    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip));
    std::string peer =
        std::string(ip) + ":" + std::to_string(ntohs(peer_addr.sin_port));

    bool shed = false;
    {
      MutexLock lock(mutex_);
      if (active_connections_ >= options_.max_connections) {
        shed = true;
        ++stats_.connections_shed;
        ++stats_.responses_5xx;
      } else {
        ++active_connections_;
        ++stats_.connections_accepted;
      }
    }
    if (shed) {
      HttpResponse busy = HttpResponse::Json(
          503, ErrorJson(Status::CapacityError(
                   "server at connection capacity"),
                         options_.shed_retry_after_seconds));
      busy.close = true;
      busy.SetHeader("Retry-After",
                     RetryAfterValue(options_.shed_retry_after_seconds));
      (void)WriteAll(fd, SerializeResponse(busy));
      CloseFd(fd);
      continue;
    }

    pool_->Submit([this, fd, peer = std::move(peer)]() mutable {
      HandleConnection(fd, std::move(peer));
      MutexLock lock(mutex_);
      if (--active_connections_ == 0) cv_idle_.NotifyAll();
    });
  }
}

void HttpServer::HandleConnection(int fd, std::string peer) {
  std::string carry;
  const auto cancelled = [this] {
    return draining_.load(std::memory_order_acquire);
  };

  while (!draining_.load(std::memory_order_acquire)) {
    HttpRequest request;
    Result<ReadOutcome> outcome =
        ReadHttpRequest(fd, options_.limits,
                        options_.keep_alive_timeout_seconds, cancelled,
                        &carry, &request);
    if (!outcome.ok()) {
      const Status& st = outcome.status();
      if (st.code() == StatusCode::kInvalidArgument ||
          st.code() == StatusCode::kCapacityError) {
        int http = st.code() == StatusCode::kCapacityError ? 413 : 400;
        HttpResponse bad = HttpResponse::Json(http, ErrorJson(st));
        bad.close = true;
        CountResponse(http);
        (void)WriteAll(fd, SerializeResponse(bad));
      }
      break;  // IOError or malformed: nothing more to read
    }
    if (outcome.value() != ReadOutcome::kRequest) break;

    request.peer = peer;
    {
      MutexLock lock(mutex_);
      ++stats_.requests;
    }
    HttpResponse response = Dispatch(request);
    if (draining_.load(std::memory_order_acquire)) response.close = true;
    const std::string* conn = request.FindHeader("connection");
    if (conn != nullptr && *conn == "close") response.close = true;
    CountResponse(response.status);
    if (!WriteAll(fd, SerializeResponse(response)).ok()) break;
    if (response.close) break;
  }
  CloseFd(fd);
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  auto it = routes_.find({request.method, request.target});
  if (it != routes_.end()) return it->second(request);

  // Distinguish 405 (path known, method not) from 404.
  for (const auto& route : routes_) {
    if (route.first.second == request.target) {
      return HttpResponse::Json(
          405, ErrorJson(Status::InvalidArgument(
                   "method " + request.method + " not allowed on " +
                   request.target)));
    }
  }
  return HttpResponse::Json(
      404, ErrorJson(Status::NotFound("no route for " + request.method +
                                      " " + request.target)));
}

void HttpServer::CountResponse(int status) {
  MutexLock lock(mutex_);
  if (status >= 500) {
    ++stats_.responses_5xx;
  } else if (status >= 400) {
    ++stats_.responses_4xx;
  } else {
    ++stats_.responses_2xx;
  }
}

// ---------------------------------------------------------------------------
// QueryServer

QueryServer::QueryServer(service::QueryService* service,
                         QueryServerOptions options)
    : service_(service),
      options_(options),
      limiter_([&] {
        RateLimiter::Options lo;
        lo.rate_per_sec = options.rate_limit_qps;
        lo.burst = options.rate_limit_burst;
        return lo;
      }()),
      http_(options.http) {
  http_.Route("POST", "/v1/query",
              [this](const HttpRequest& r) { return HandleQuery(r); });
  http_.Route("GET", "/v1/datasets",
              [this](const HttpRequest& r) { return HandleDatasets(r); });
  http_.Route("GET", "/v1/stats",
              [this](const HttpRequest& r) { return HandleStats(r); });
  http_.Route("GET", "/healthz",
              [this](const HttpRequest& r) { return HandleHealthz(r); });
}

Status QueryServer::Start() { return http_.Start(); }

HttpResponse QueryServer::HandleQuery(const HttpRequest& request) {
  // Rate limit before any parsing: the cheapest possible reject path.
  if (limiter_.enabled()) {
    const std::string* id = request.FindHeader("x-client-id");
    const std::string& key = id != nullptr ? *id : request.peer;
    RateLimiter::Decision d = limiter_.Admit(key, NowSeconds());
    if (!d.allowed) {
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse r = HttpResponse::Json(
          429, ErrorJson(Status::CapacityError(
                   "rate limit exceeded for client '" + key + "'"),
                         d.retry_after_seconds));
      r.SetHeader("Retry-After", RetryAfterValue(d.retry_after_seconds));
      return r;
    }
  }

  Result<QueryRequest> parsed = ParseQueryRequest(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const QueryRequest& query = parsed.value();

  Result<std::size_t> dataset = service_->ResolveDataset(query.spec.dataset);
  if (!dataset.ok()) return ErrorResponse(dataset.status());

  service::SubmitOptions submit;
  if (query.high_priority) submit.priority = service::Priority::kHigh;
  Result<std::future<service::ServiceResponse>> future =
      service_->TrySubmit(dataset.value(), query.spec, query.policy,
                          submit);
  if (!future.ok()) {
    // Queue full or service draining: shed fast, tell the client when to
    // come back. This is the load-shedding path the bench drives to
    // saturation.
    shed_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse r = HttpResponse::Json(
        HttpStatusFor(future.status().code()),
        ErrorJson(future.status(), options_.shed_retry_after_seconds));
    r.SetHeader("Retry-After",
                RetryAfterValue(options_.shed_retry_after_seconds));
    return r;
  }

  service::ServiceResponse response = future.MoveValueUnsafe().get();
  if (!response.result.ok()) return ErrorResponse(response.result.status());
  return HttpResponse::Json(200, QueryResponseJson(response));
}

HttpResponse QueryServer::HandleDatasets(const HttpRequest&) {
  return HttpResponse::Json(200, DatasetsJson(service_->ListDatasets()));
}

HttpResponse QueryServer::HandleStats(const HttpRequest&) {
  return HttpResponse::Json(
      200, StatsJson(service_->stats(), ServerStatsJson()));
}

HttpResponse QueryServer::HandleHealthz(const HttpRequest&) {
  if (http_.draining()) {
    return HttpResponse::Json(503, "{\"status\":\"draining\"}");
  }
  return HttpResponse::Json(200, "{\"status\":\"ok\"}");
}

std::string QueryServer::ServerStatsJson() const {
  HttpServerStats s = http_.stats();
  std::string out = "{";
  out += "\"connections_accepted\":" + std::to_string(s.connections_accepted);
  out += ",\"connections_shed\":" + std::to_string(s.connections_shed);
  out += ",\"requests\":" + std::to_string(s.requests);
  out += ",\"responses_2xx\":" + std::to_string(s.responses_2xx);
  out += ",\"responses_4xx\":" + std::to_string(s.responses_4xx);
  out += ",\"responses_5xx\":" + std::to_string(s.responses_5xx);
  out += ",\"rate_limited\":" + std::to_string(
             rate_limited_.load(std::memory_order_relaxed));
  out += ",\"shed\":" + std::to_string(shed_.load(std::memory_order_relaxed));
  out += ",\"rate_limit_clients\":" + std::to_string(limiter_.num_clients());
  out += "}";
  return out;
}

}  // namespace rj::net
