#include "net/rate_limiter.h"

#include <algorithm>

namespace rj::net {

RateLimiter::Decision RateLimiter::Admit(const std::string& key,
                                         double now_seconds) {
  Decision decision;
  if (!enabled()) return decision;

  MutexLock lock(mutex_);
  if (buckets_.size() >= options_.max_clients &&
      buckets_.find(key) == buckets_.end()) {
    SweepLocked(now_seconds);
  }

  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    Bucket fresh;
    fresh.tokens = options_.burst;
    fresh.last_refill = now_seconds;
    it = buckets_.emplace(key, fresh).first;
  }

  Bucket& bucket = it->second;
  const double elapsed = std::max(0.0, now_seconds - bucket.last_refill);
  bucket.tokens = std::min(options_.burst,
                           bucket.tokens + elapsed * options_.rate_per_sec);
  bucket.last_refill = now_seconds;

  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return decision;
  }
  decision.allowed = false;
  decision.retry_after_seconds =
      (1.0 - bucket.tokens) / options_.rate_per_sec;
  return decision;
}

std::size_t RateLimiter::num_clients() const {
  MutexLock lock(mutex_);
  return buckets_.size();
}

void RateLimiter::SweepLocked(double now_seconds) {
  // A bucket whose refill since last touch would have filled it back to
  // burst carries no state a fresh bucket wouldn't — safe to drop.
  const double full_refill_seconds =
      options_.burst / std::max(options_.rate_per_sec, 1e-9);
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (now_seconds - it->second.last_refill > full_refill_seconds) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rj::net
