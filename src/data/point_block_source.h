/// \file point_block_source.h
/// \brief Block-based scan abstraction over point data (the P relation).
///
/// Every layer above data/ historically hard-coded a fully-materialized
/// in-RAM PointTable. PointBlockSource replaces that contract with an
/// ordered stream of fixed-capacity column *blocks*, each carrying a zone
/// map (bbox + per-column min/max), so the same join pipeline can scan an
/// in-memory table or an mmap-backed disk file (block_file.h) — and skip
/// blocks a query's canvas or filters can never touch.
///
/// Thread-safety contract: a source is immutable once built. ReadBlock is
/// const and safe to call from multiple threads concurrently **as long as
/// each caller supplies its own scratch table** (the upload pipeline's
/// reader thread and a concurrent query each bring their own).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/point_table.h"
#include "geometry/bbox.h"

namespace rj::data {

/// Per-block statistics for scan pruning (the "zone map" of classic column
/// stores). The bbox is the MBR of the block's finite locations — rows
/// with NaN coordinates are excluded (they can never join: every variant
/// clips or misses them), and ±inf coordinates extend the box to infinity
/// so such a block is never pruned. Column ranges ignore NaN attribute
/// values (NaN fails every filter operator, so a pruned range stays safe);
/// an all-NaN column yields the empty range min=+inf > max=-inf, which
/// every range test rejects — correctly prunable.
struct BlockZoneMap {
  BBox bbox;
  std::vector<float> col_min;  ///< one entry per schema attribute column
  std::vector<float> col_max;
};

/// One readable block: `rows` [begin, end) of `*table`. For in-memory
/// adapters `table` is the parent table and [begin, end) a row window; for
/// disk readers `table` is the caller's scratch holding exactly the block.
/// The reference stays valid until the next ReadBlock into the same
/// scratch (or until the source dies, whichever is first).
struct BlockRef {
  const PointTable* table = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

/// Zero-copy view of one block's columns, indexed block-locally: row i of
/// the view is row i of the block, i in [0, size). Mirrors the PointTable
/// read surface (At / attribute) so row-loop templates accept either.
///
/// Lifetime: the pointers belong to the source (mmap pages, a parent
/// table) or to the caller's scratch, depending on which ViewBlock
/// produced them — so a view is valid until the next ViewBlock/ReadBlock
/// into the same scratch or until the source dies, whichever is first.
/// Exactly the BlockRef contract; no caller may hold a view across either
/// event.
struct BlockView {
  const double* xs = nullptr;
  const double* ys = nullptr;
  std::vector<const float*> attrs;  ///< one entry per schema column
  std::size_t size = 0;

  Point At(std::size_t i) const { return {xs[i], ys[i]}; }
  const float* attribute(std::size_t c) const { return attrs[c]; }
};

/// Schema + extent + an ordered stream of fixed-capacity column blocks.
class PointBlockSource {
 public:
  virtual ~PointBlockSource() = default;

  virtual const std::vector<std::string>& attribute_names() const = 0;
  virtual std::uint64_t num_rows() const = 0;

  /// Blocks are numbered 0..num_blocks-1 in row order: block b holds rows
  /// [b * block_capacity, ...) of the source's row order. Every block is
  /// full except possibly the last.
  virtual std::size_t num_blocks() const = 0;
  virtual std::size_t block_capacity() const = 0;
  virtual std::size_t block_rows(std::size_t block) const = 0;

  /// Zone map of block `block`, or nullptr when the source does not
  /// maintain one (such a block is never pruned).
  virtual const BlockZoneMap* zone_map(std::size_t block) const = 0;

  /// Bounding box of all locations (cached; O(1)).
  virtual const BBox& extent() const = 0;

  /// Materializes block `block`. Disk sources fill `*scratch` and return a
  /// reference into it; in-memory adapters return a window of the parent
  /// table without touching `scratch`. See the class comment for the
  /// concurrency contract.
  virtual Result<BlockRef> ReadBlock(std::size_t block,
                                     PointTable* scratch) const = 0;

  /// Column-pointer view of block `block`. The base implementation calls
  /// ReadBlock and wraps the resulting window, so it is a copy for disk
  /// sources but already zero-copy for in-memory adapters (whose ReadBlock
  /// is a pointer adjustment). Sources whose storage is directly
  /// addressable override it to skip the scratch copy entirely —
  /// BlockFileReader returns pointers into its RAM-cached mapping
  /// (the format 8-byte aligns every block for exactly this). Overrides
  /// must meter bytes_read identically to ReadBlock: the Fig. 13 metric
  /// counts block bytes *accessed*, not bytes memcpy'd.
  virtual Result<BlockView> ViewBlock(std::size_t block,
                                      PointTable* scratch) const;

  /// Total bytes read from disk so far (0 for in-memory sources) — the
  /// Fig. 13 disk-access metric.
  virtual std::uint64_t bytes_read() const = 0;

  /// True when blocks live on disk (reads cost I/O); false when the data
  /// is RAM-resident and ReadBlock is a pointer adjustment.
  virtual bool disk_resident() const = 0;

  std::size_t num_attributes() const { return attribute_names().size(); }

  /// Index of the named column, or PointTable::npos.
  std::size_t FindAttribute(const std::string& name) const {
    const std::vector<std::string>& names = attribute_names();
    for (std::size_t c = 0; c < names.size(); ++c) {
      if (names[c] == name) return c;
    }
    return PointTable::npos;
  }
};

/// Adapter presenting an in-memory PointTable as a block source: block b
/// is the row window [b*capacity, min(n, (b+1)*capacity)) of the parent —
/// ReadBlock is a pointer adjustment, no copy. Zone maps are off by
/// default (computing them is an O(n) scan a one-shot query would never
/// amortize); call BuildZoneMaps() to enable pruning for a long-lived
/// registration.
class TableBlockSource final : public PointBlockSource {
 public:
  /// Non-owning: `table` must outlive this source.
  TableBlockSource(const PointTable* table, std::size_t block_capacity);

  /// Owning: adopts `table` (the v1-file loading path, which has no parent
  /// table to point into).
  TableBlockSource(PointTable table, std::size_t block_capacity);

  /// Scans the table once to compute per-block zone maps (enables
  /// pruning). Call before sharing the source across threads.
  void BuildZoneMaps();

  const PointTable& table() const { return *table_; }

  const std::vector<std::string>& attribute_names() const override {
    return table_->attribute_names();
  }
  std::uint64_t num_rows() const override { return table_->size(); }
  std::size_t num_blocks() const override { return num_blocks_; }
  std::size_t block_capacity() const override { return capacity_; }
  std::size_t block_rows(std::size_t block) const override {
    return BlockEnd(block) - BlockBegin(block);
  }
  const BlockZoneMap* zone_map(std::size_t block) const override {
    return zone_maps_.empty() ? nullptr : &zone_maps_[block];
  }
  const BBox& extent() const override { return extent_; }
  Result<BlockRef> ReadBlock(std::size_t block,
                             PointTable* scratch) const override;
  std::uint64_t bytes_read() const override { return 0; }
  bool disk_resident() const override { return false; }

 private:
  std::size_t BlockBegin(std::size_t block) const {
    return block * capacity_;
  }
  std::size_t BlockEnd(std::size_t block) const {
    return std::min(table_->size(), (block + 1) * capacity_);
  }

  std::unique_ptr<PointTable> owned_;  ///< set only by the owning ctor
  const PointTable* table_;
  std::size_t capacity_;
  std::size_t num_blocks_;
  BBox extent_;
  std::vector<BlockZoneMap> zone_maps_;  ///< empty until BuildZoneMaps()
};

/// Computes the zone map of rows [begin, end) of `table` by brute-force
/// scan — the single definition shared by TableBlockSource::BuildZoneMaps
/// and BlockFileWriter, and the oracle the zone-map metadata tests compare
/// file headers against.
BlockZoneMap ComputeZoneMap(const PointTable& table, std::size_t begin,
                            std::size_t end);

/// Reads every block of `source` in order into one in-memory table — the
/// determinism baseline (the same logical row order as the disk scan) and
/// the v1 loading path's materializer.
Result<PointTable> MaterializeBlocks(const PointBlockSource& source);

}  // namespace rj::data
