#include "data/point_block_source.h"

#include <algorithm>
#include <limits>

namespace rj::data {

BlockZoneMap ComputeZoneMap(const PointTable& table, std::size_t begin,
                            std::size_t end) {
  BlockZoneMap zone;
  const std::size_t num_attrs = table.num_attributes();
  // Empty ranges: BBox default (min=+inf > max=-inf) — NaN comparisons are
  // false, so NaN coordinates/values fall through without widening.
  zone.col_min.assign(num_attrs, std::numeric_limits<float>::infinity());
  zone.col_max.assign(num_attrs, -std::numeric_limits<float>::infinity());
  for (std::size_t i = begin; i < end; ++i) {
    zone.bbox.Expand(table.At(i));
    for (std::size_t c = 0; c < num_attrs; ++c) {
      const float v = table.attribute(c)[i];
      if (v < zone.col_min[c]) zone.col_min[c] = v;
      if (v > zone.col_max[c]) zone.col_max[c] = v;
    }
  }
  return zone;
}

Result<BlockView> PointBlockSource::ViewBlock(std::size_t block,
                                              PointTable* scratch) const {
  RJ_ASSIGN_OR_RETURN(BlockRef ref, ReadBlock(block, scratch));
  // Re-base the window to block-local indices by offsetting each column
  // pointer — zero-copy over whatever storage ReadBlock returned (the
  // parent table for in-memory adapters, `scratch` for disk readers).
  BlockView view;
  view.xs = ref.table->xs().data() + ref.begin;
  view.ys = ref.table->ys().data() + ref.begin;
  view.attrs.resize(ref.table->num_attributes());
  for (std::size_t c = 0; c < view.attrs.size(); ++c) {
    view.attrs[c] = ref.table->attribute(c).data() + ref.begin;
  }
  view.size = ref.size();
  return view;
}

Result<PointTable> MaterializeBlocks(const PointBlockSource& source) {
  PointTable out;
  for (const std::string& name : source.attribute_names()) {
    out.AddAttribute(name);
  }
  out.Reserve(source.num_rows());
  PointTable scratch;
  std::vector<float> vals(source.num_attributes());
  for (std::size_t b = 0; b < source.num_blocks(); ++b) {
    RJ_ASSIGN_OR_RETURN(BlockView view, source.ViewBlock(b, &scratch));
    for (std::size_t i = 0; i < view.size; ++i) {
      for (std::size_t c = 0; c < vals.size(); ++c) {
        vals[c] = view.attrs[c][i];
      }
      out.Append(view.xs[i], view.ys[i], vals);
    }
  }
  out.CacheExtent();
  return out;
}

TableBlockSource::TableBlockSource(const PointTable* table,
                                   std::size_t block_capacity)
    : table_(table), capacity_(std::max<std::size_t>(block_capacity, 1)) {
  num_blocks_ =
      table_->empty() ? 0 : (table_->size() + capacity_ - 1) / capacity_;
  extent_ = table_->Extent();
}

TableBlockSource::TableBlockSource(PointTable table,
                                   std::size_t block_capacity)
    : owned_(std::make_unique<PointTable>(std::move(table))),
      table_(owned_.get()),
      capacity_(std::max<std::size_t>(block_capacity, 1)) {
  num_blocks_ =
      table_->empty() ? 0 : (table_->size() + capacity_ - 1) / capacity_;
  extent_ = table_->Extent();
}

void TableBlockSource::BuildZoneMaps() {
  zone_maps_.clear();
  zone_maps_.reserve(num_blocks_);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    zone_maps_.push_back(ComputeZoneMap(*table_, BlockBegin(b), BlockEnd(b)));
  }
}

Result<BlockRef> TableBlockSource::ReadBlock(std::size_t block,
                                             PointTable* scratch) const {
  (void)scratch;  // the parent table *is* the block storage
  if (block >= num_blocks_) {
    return Status::OutOfRange("block index out of range");
  }
  return BlockRef{table_, BlockBegin(block), BlockEnd(block)};
}

}  // namespace rj::data
