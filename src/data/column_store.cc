#include "data/column_store.h"

#include <cstring>

namespace rj {

namespace {

Status WriteBytes(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out.good()) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace

Status WriteColumnStore(const std::string& path, const PointTable& table) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }

  ColumnStoreHeader header;
  header.num_rows = table.size();
  header.num_attributes = static_cast<std::uint32_t>(table.num_attributes());
  RJ_RETURN_NOT_OK(WriteBytes(out, &header, sizeof(header)));

  for (std::size_t c = 0; c < table.num_attributes(); ++c) {
    const std::string& name = table.attribute_name(c);
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    RJ_RETURN_NOT_OK(WriteBytes(out, &len, sizeof(len)));
    RJ_RETURN_NOT_OK(WriteBytes(out, name.data(), len));
  }

  RJ_RETURN_NOT_OK(WriteBytes(out, table.xs().data(),
                              table.size() * sizeof(double)));
  RJ_RETURN_NOT_OK(WriteBytes(out, table.ys().data(),
                              table.size() * sizeof(double)));
  for (std::size_t c = 0; c < table.num_attributes(); ++c) {
    RJ_RETURN_NOT_OK(WriteBytes(out, table.attribute(c).data(),
                                table.size() * sizeof(float)));
  }
  out.flush();
  if (!out.good()) return Status::IOError("flush failed: " + path);
  return Status::OK();
}

Result<ColumnStoreReader> ColumnStoreReader::Open(
    const std::string& path, std::vector<std::uint32_t> columns) {
  ColumnStoreReader reader;
  reader.path_ = path;
  reader.file_.open(path, std::ios::binary);
  if (!reader.file_.is_open()) {
    return Status::IOError("cannot open: " + path);
  }
  // Everything in the header is untrusted until it is validated against
  // the actual file size: a corrupt `len` must not drive a multi-GB
  // std::string allocation, and a corrupt row/attribute count must not
  // turn into out-of-range reads later.
  reader.file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(reader.file_.tellg());
  reader.file_.seekg(0);
  if (file_size < sizeof(reader.header_)) {
    return Status::IOError("not a column-store file (truncated): " + path);
  }
  reader.file_.read(reinterpret_cast<char*>(&reader.header_),
                    sizeof(reader.header_));
  if (!reader.file_.good() ||
      reader.header_.magic != ColumnStoreHeader::kMagic) {
    return Status::IOError("not a column-store file: " + path);
  }
  if (reader.header_.version != 1) {
    return Status::IOError(
        "unsupported column-store version " +
        std::to_string(reader.header_.version) +
        " (v2 block files open via data::OpenPointBlockSource): " + path);
  }
  // Each attribute costs at least its 4-byte name-length prefix.
  std::uint64_t offset = sizeof(reader.header_);
  if (reader.header_.num_attributes >
      (file_size - offset) / sizeof(std::uint32_t)) {
    return Status::IOError("corrupt header (attribute count): " + path);
  }
  for (std::uint32_t c = 0; c < reader.header_.num_attributes; ++c) {
    std::uint32_t len = 0;
    if (offset + sizeof(len) > file_size) {
      return Status::IOError("truncated header: " + path);
    }
    reader.file_.read(reinterpret_cast<char*>(&len), sizeof(len));
    offset += sizeof(len);
    if (!reader.file_.good() || len > file_size - offset) {
      return Status::IOError("truncated header: " + path);
    }
    std::string name(len, '\0');
    reader.file_.read(name.data(), len);
    offset += len;
    if (!reader.file_.good()) {
      return Status::IOError("truncated header: " + path);
    }
    reader.names_.push_back(std::move(name));
  }
  reader.data_offset_ = static_cast<std::uint64_t>(reader.file_.tellg());
  // The column region must actually hold num_rows rows of x/y doubles plus
  // one float per attribute.
  const std::uint64_t row_bytes =
      2 * sizeof(double) + reader.header_.num_attributes * sizeof(float);
  if (reader.header_.num_rows > (file_size - reader.data_offset_) / row_bytes) {
    return Status::IOError("truncated column data: " + path);
  }
  for (const std::uint32_t c : columns) {
    if (c >= reader.header_.num_attributes) {
      return Status::InvalidArgument("column index out of range");
    }
  }
  reader.columns_ = std::move(columns);
  return reader;
}

Status ColumnStoreReader::ReadAt(std::uint64_t offset, void* dst,
                                 std::uint64_t bytes) {
  file_.seekg(static_cast<std::streamoff>(offset));
  file_.read(reinterpret_cast<char*>(dst),
             static_cast<std::streamsize>(bytes));
  if (!file_.good()) return Status::IOError("read failed: " + path_);
  bytes_read_ += bytes;
  return Status::OK();
}

Result<std::uint64_t> ColumnStoreReader::NextBatch(std::uint64_t max_rows,
                                                   PointTable* out) {
  const std::uint64_t remaining = header_.num_rows - cursor_;
  const std::uint64_t n = std::min(max_rows, remaining);

  std::vector<std::string> batch_names;
  batch_names.reserve(columns_.size());
  for (const std::uint32_t c : columns_) batch_names.push_back(names_[c]);

  const std::uint64_t rows = header_.num_rows;
  const std::uint64_t x_off = data_offset_ + cursor_ * sizeof(double);
  const std::uint64_t y_off =
      data_offset_ + rows * sizeof(double) + cursor_ * sizeof(double);

  std::vector<double> xs(n), ys(n);
  if (n > 0) {
    RJ_RETURN_NOT_OK(ReadAt(x_off, xs.data(), n * sizeof(double)));
    RJ_RETURN_NOT_OK(ReadAt(y_off, ys.data(), n * sizeof(double)));
  }

  std::vector<std::vector<float>> cols(columns_.size());
  const std::uint64_t attrs_base = data_offset_ + 2 * rows * sizeof(double);
  for (std::size_t k = 0; k < columns_.size(); ++k) {
    cols[k].resize(n);
    if (n == 0) continue;
    const std::uint64_t off =
        attrs_base + columns_[k] * rows * sizeof(float) +
        cursor_ * sizeof(float);
    RJ_RETURN_NOT_OK(ReadAt(off, cols[k].data(), n * sizeof(float)));
  }

  // The column vectors are already exactly the batch — move them in
  // wholesale instead of re-copying every row through Append.
  out->AdoptColumns(std::move(xs), std::move(ys), std::move(batch_names),
                    std::move(cols));
  cursor_ += n;
  return n;
}

Status ColumnStoreReader::Reset() {
  cursor_ = 0;
  file_.clear();
  return Status::OK();
}

Result<PointTable> ReadColumnStore(const std::string& path) {
  std::vector<std::uint32_t> columns;
  {
    RJ_ASSIGN_OR_RETURN(ColumnStoreReader probe,
                        ColumnStoreReader::Open(path, {}));
    columns.resize(probe.num_attributes());
    for (std::uint32_t c = 0; c < probe.num_attributes(); ++c) {
      columns[c] = c;
    }
  }
  RJ_ASSIGN_OR_RETURN(ColumnStoreReader reader,
                      ColumnStoreReader::Open(path, std::move(columns)));
  PointTable table;
  RJ_ASSIGN_OR_RETURN(std::uint64_t n,
                      reader.NextBatch(reader.num_rows(), &table));
  (void)n;
  return table;
}

}  // namespace rj
