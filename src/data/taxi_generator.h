/// \file taxi_generator.h
/// \brief Synthetic NYC-taxi-like point data set (DESIGN.md §2 substitute).
///
/// The real data set (868M yellow-cab trips, 2009–2013) is proprietary-
/// scale; this generator reproduces the properties the experiments depend
/// on: heavy spatial skew (Lower/Midtown Manhattan and the two airports,
/// §7.1), a uniform background over the city extent, and trip attributes
/// (fare, tip, distance, passengers, hour) with plausible marginals so
/// filter constraints (Fig. 11) select realistic fractions.
#pragma once

#include <cstdint>

#include "data/point_table.h"
#include "geometry/bbox.h"

namespace rj {

/// World extent used for NYC-like data, in meters (local planar frame
/// roughly 45 km × 40 km, matching the span of the five boroughs).
BBox NycExtentMeters();

struct TaxiGeneratorOptions {
  std::uint64_t seed = 20170101;
  /// Fraction of points drawn from hot-spot Gaussians vs uniform
  /// background (taxi pickups are strongly clustered).
  double hotspot_fraction = 0.85;
};

/// Attribute column order produced by the generator.
enum TaxiColumn : std::size_t {
  kTaxiFare = 0,
  kTaxiTip = 1,
  kTaxiDistance = 2,
  kTaxiPassengers = 3,
  kTaxiHour = 4,
};

/// Generates `n` taxi-like pickup points with the five attribute columns
/// above, inside NycExtentMeters().
PointTable GenerateTaxiPoints(std::size_t n,
                              const TaxiGeneratorOptions& options = {});

}  // namespace rj
