/// \file sharded_table.h
/// \brief Partition of a PointTable into per-device shards.
///
/// The paper's P relation lives on one GPU; scaling past a single device's
/// memory (ROADMAP "dataset sharding") means splitting the point set into
/// shards, one per gpu::Device in a DevicePool, and scatter-gathering the
/// join. Because every distributive aggregate merges exactly across
/// disjoint partitions (docs/SERVICE.md "Determinism under sharding"), the
/// partition policy is a pure performance/placement choice:
///
///  * kRoundRobin — point i lands on shard i mod S. Perfectly balanced and
///    insertion-order-preserving within a shard; every shard sees the whole
///    spatial extent, so all shards rasterize all canvas tiles (the right
///    default for skew-free load spreading).
///  * kHilbert — points are ordered along a Hilbert space-filling curve
///    over the dataset extent and cut into S contiguous key ranges. Each
///    shard covers a compact region (cf. the LSST multi-petabyte design's
///    spatial chunking), which keeps per-shard working sets small for
///    spatially-selective workloads. Where the cuts fall is governed by
///    ShardingOptions::cut_mode:
///      - kQuantile (default) places cuts at sample quantiles of the
///        points' Hilbert keys, so row counts stay near-balanced even on
///        heavily clustered (Zipf-like) data. Equal keys never split
///        across a cut, so shard key ranges are disjoint.
///      - kEqualRange cuts the key space [0, 4^order) into S equal
///        ranges — spatially uniform shards, unbalanced under skew. Kept
///        as the legacy baseline the quantile mode is measured against.
///
/// Every policy additionally records a per-shard BlockZoneMap (bounding
/// box + per-column min/max) at construction; the executor's
/// spatially-selective routing prunes shards with it exactly as the block
/// scan prunes blocks (join::ZoneMapCanMatch, conservative-exact).
///
/// Both policies are deterministic: the same table and options always
/// produce byte-identical shards (Hilbert ties break on original index).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/point_block_source.h"
#include "data/point_table.h"
#include "geometry/bbox.h"

namespace rj::data {

/// How points are assigned to shards.
enum class ShardPolicy {
  kRoundRobin,
  kHilbert,
};

/// Where the kHilbert policy cuts the curve into shards.
enum class HilbertCutMode {
  kQuantile,    ///< cuts at sampled key quantiles: balanced under skew
  kEqualRange,  ///< cuts at equal key-space ranges: legacy baseline
};

/// Human-readable policy name ("round-robin", "hilbert").
std::string ShardPolicyName(ShardPolicy policy);

/// Human-readable cut-mode name ("quantile", "equal-range").
std::string HilbertCutModeName(HilbertCutMode mode);

/// Configuration of one partitioning run.
struct ShardingOptions {
  std::size_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kRoundRobin;
  /// Hilbert curve order: the extent is quantized onto a 2^order × 2^order
  /// grid before curve indexing. 16 gives ~65k cells per axis — far below
  /// double precision, far above any realistic shard count.
  std::uint32_t hilbert_order = 16;
  /// Cut placement for kHilbert (ignored by kRoundRobin).
  HilbertCutMode cut_mode = HilbertCutMode::kQuantile;
};

/// An immutable set of shards cut from one PointTable. Shards own copies
/// of their rows (each will live in a different device's memory; in a real
/// cluster they would not even share an address space), and the table
/// remembers the full dataset extent so every shard rasterizes on the same
/// canvas — the alignment sharded determinism depends on.
class ShardedTable {
 public:
  /// Partitions `base` into options.num_shards shards. The base table is
  /// not referenced after this returns. Fewer points than shards is legal
  /// (trailing shards stay empty); zero shards is an error.
  static Result<ShardedTable> Partition(const PointTable& base,
                                        const ShardingOptions& options);

  std::size_t num_shards() const { return shards_.size(); }
  const PointTable& shard(std::size_t i) const { return shards_[i]; }

  /// Zone map of shard i (bounding box + per-column min/max), computed at
  /// construction. Empty shards carry the canonical empty zone (default
  /// BBox, ±inf column ranges) that ZoneMapCanMatch never matches.
  const BlockZoneMap& shard_zone(std::size_t i) const { return zones_[i]; }

  /// Total rows across every shard (= the base table's size).
  std::size_t total_points() const { return total_points_; }
  /// Largest single shard (the per-device residency bound admission plans
  /// against).
  std::size_t max_shard_points() const { return max_shard_points_; }

  /// Extent of the *whole* dataset, not any one shard.
  const BBox& extent() const { return extent_; }

  const ShardingOptions& options() const { return options_; }
  ShardPolicy policy() const { return options_.policy; }

 private:
  ShardedTable() = default;

  std::vector<PointTable> shards_;
  std::vector<BlockZoneMap> zones_;
  BBox extent_;
  std::size_t total_points_ = 0;
  std::size_t max_shard_points_ = 0;
  ShardingOptions options_;
};

/// Distance along the order-`order` Hilbert curve of grid cell (x, y);
/// x and y must be < 2^order. Exposed for tests (locality properties) and
/// reusable by future spatial-placement policies.
std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y);

}  // namespace rj::data
