#include "data/taxi_generator.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"

namespace rj {

BBox NycExtentMeters() { return BBox(0.0, 0.0, 45000.0, 40000.0); }

namespace {

/// Hot spots loosely modeled on the paper's observation that "taxi trips
/// are mostly concentrated in Lower Manhattan, Midtown, and airports".
struct HotSpot {
  Point center;
  double sigma;   ///< meters
  double weight;  ///< relative share among hot spots
};

const HotSpot kSpots[] = {
    {{17000.0, 14000.0}, 1200.0, 0.34},  // Lower Manhattan
    {{18500.0, 19000.0}, 1500.0, 0.36},  // Midtown
    {{33000.0, 12000.0}, 900.0, 0.12},   // JFK-like
    {{27000.0, 21000.0}, 800.0, 0.10},   // LGA-like
    {{14000.0, 24000.0}, 2000.0, 0.08},  // Upper Manhattan / Bronx edge
};

}  // namespace

PointTable GenerateTaxiPoints(std::size_t n,
                              const TaxiGeneratorOptions& options) {
  Rng rng(options.seed);
  const BBox extent = NycExtentMeters();

  PointTable table;
  table.AddAttribute("fare");
  table.AddAttribute("tip");
  table.AddAttribute("distance");
  table.AddAttribute("passengers");
  table.AddAttribute("hour");
  table.Reserve(n);

  double cumulative[std::size(kSpots)];
  double acc = 0.0;
  for (std::size_t s = 0; s < std::size(kSpots); ++s) {
    acc += kSpots[s].weight;
    cumulative[s] = acc;
  }

  for (std::size_t i = 0; i < n; ++i) {
    Point p;
    if (rng.Chance(options.hotspot_fraction)) {
      const double u = rng.Uniform() * acc;
      std::size_t s = 0;
      while (s + 1 < std::size(kSpots) && u > cumulative[s]) ++s;
      // Rejection-free clamp keeps all points inside the extent.
      p.x = Clamp(rng.Normal(kSpots[s].center.x, kSpots[s].sigma),
                  extent.min_x, extent.max_x - 1e-6);
      p.y = Clamp(rng.Normal(kSpots[s].center.y, kSpots[s].sigma),
                  extent.min_y, extent.max_y - 1e-6);
    } else {
      p.x = rng.Uniform(extent.min_x, extent.max_x);
      p.y = rng.Uniform(extent.min_y, extent.max_y);
    }

    // Trip attributes with plausible marginals.
    const float distance =
        static_cast<float>(std::max(0.2, rng.Normal(2.8, 2.0)));  // miles
    const float fare =
        static_cast<float>(2.5 + 2.4 * distance +
                           std::max(0.0, rng.Normal(0.0, 1.5)));
    const float tip = static_cast<float>(
        rng.Chance(0.6) ? fare * rng.Uniform(0.08, 0.25) : 0.0);
    const float passengers = static_cast<float>(1 + rng.UniformInt(5));
    const float hour = static_cast<float>(rng.UniformInt(24));

    table.Append(p.x, p.y, {fare, tip, distance, passengers, hour});
  }
  return table;
}

}  // namespace rj
