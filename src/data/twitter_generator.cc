#include "data/twitter_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_utils.h"
#include "common/rng.h"

namespace rj {

BBox UsExtentMeters() { return BBox(0.0, 0.0, 4500000.0, 2800000.0); }

PointTable GenerateTwitterPoints(std::size_t n,
                                 const TwitterGeneratorOptions& options) {
  Rng rng(options.seed);
  const BBox extent = UsExtentMeters();

  // City sizes follow a Zipf-ish distribution (rank-1 city dominates).
  struct City {
    Point center;
    double sigma;
    double cum_weight;
  };
  std::vector<City> cities(options.num_cities);
  double acc = 0.0;
  for (std::size_t c = 0; c < options.num_cities; ++c) {
    City& city = cities[c];
    city.center = {rng.Uniform(extent.min_x + 100000.0, extent.max_x - 100000.0),
                   rng.Uniform(extent.min_y + 100000.0, extent.max_y - 100000.0)};
    city.sigma = rng.Uniform(15000.0, 60000.0);
    acc += 1.0 / static_cast<double>(c + 1);  // Zipf weight
    city.cum_weight = acc;
  }

  PointTable table;
  table.AddAttribute("favorites");
  table.AddAttribute("retweets");
  table.AddAttribute("hour");
  table.Reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    Point p;
    if (rng.Chance(options.city_fraction)) {
      const double u = rng.Uniform() * acc;
      std::size_t lo = 0, hi = cities.size() - 1;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cities[mid].cum_weight < u) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const City& city = cities[lo];
      p.x = Clamp(rng.Normal(city.center.x, city.sigma), extent.min_x,
                  extent.max_x - 1e-3);
      p.y = Clamp(rng.Normal(city.center.y, city.sigma), extent.min_y,
                  extent.max_y - 1e-3);
    } else {
      p.x = rng.Uniform(extent.min_x, extent.max_x);
      p.y = rng.Uniform(extent.min_y, extent.max_y);
    }

    // Long-tailed engagement counts.
    const float favorites =
        static_cast<float>(std::floor(std::exp(rng.Normal(0.5, 1.4)) - 1.0 >
                                              0.0
                                          ? std::exp(rng.Normal(0.5, 1.4)) - 1.0
                                          : 0.0));
    const float retweets = static_cast<float>(
        std::max(0.0, std::floor(favorites * rng.Uniform(0.0, 0.5))));
    const float hour = static_cast<float>(rng.UniformInt(24));
    table.Append(p.x, p.y, {favorites, retweets, hour});
  }
  return table;
}

}  // namespace rj
