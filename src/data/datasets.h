/// \file datasets.h
/// \brief Preset data sets matching the paper's experimental setup (§7.1).
///
/// Table 1 of the paper uses two polygon sets — NYC neighborhoods (260
/// polygons) and US counties (3945 polygons). DESIGN.md §2 substitutes the
/// §7.4 Voronoi-merge generator at the same counts and extents; these
/// presets pin the seeds so every bench and test sees identical geometry.
#pragma once

#include "common/status.h"
#include "data/point_table.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "data/twitter_generator.h"

namespace rj {

/// 260 neighborhood-like polygons over the NYC extent (Table 1 row 1).
Result<PolygonSet> NycNeighborhoods();

/// 3945 county-like polygons over the US extent (Table 1 row 2).
Result<PolygonSet> UsCounties();

/// Smaller presets for unit tests (fast to generate).
Result<PolygonSet> TinyRegions(std::size_t n, const BBox& extent,
                               std::uint64_t seed = 7);

}  // namespace rj
