/// \file column_store.h
/// \brief Binary columnar on-disk format with batch streaming.
///
/// The paper stores both data sets "as columns on disk" (§7.1) and, for
/// the disk-resident experiments (§7.7), "simply reads data from disk as
/// and when required to transfer to the GPU". This module provides that
/// substrate: a simple column file format plus a streaming reader that
/// yields fixed-size batches without holding the full table in memory.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/point_table.h"

namespace rj {

/// Magic + version header of the .rjc file format.
struct ColumnStoreHeader {
  static constexpr std::uint64_t kMagic = 0x524A434F4C53544Full;  // "RJCOLSTO"
  std::uint64_t magic = kMagic;
  std::uint64_t num_rows = 0;
  std::uint32_t num_attributes = 0;
  std::uint32_t version = 1;
};

/// Writes a PointTable to `path` in the column-store format:
/// header, attribute names (length-prefixed), then x[], y[] as float64 and
/// each attribute column as float32, column-contiguous.
Status WriteColumnStore(const std::string& path, const PointTable& table);

/// Reads an entire column store into memory.
Result<PointTable> ReadColumnStore(const std::string& path);

/// Streams a column store in row batches, loading only the requested
/// attribute columns (the paper loads "the required columns" only).
class ColumnStoreReader {
 public:
  /// Opens `path`; `columns` selects attribute columns by index
  /// (locations are always read). Every header field is validated against
  /// the actual file size before it is trusted: corrupt or truncated files
  /// fail with IOError instead of driving allocations or reads. v2 block
  /// files (block_file.h) are rejected here — open them through
  /// data::OpenPointBlockSource, which serves both versions.
  static Result<ColumnStoreReader> Open(const std::string& path,
                                        std::vector<std::uint32_t> columns);

  std::uint64_t num_rows() const { return header_.num_rows; }
  std::uint32_t num_attributes() const { return header_.num_attributes; }
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// Reads up to `max_rows` rows into `out` (replacing its contents).
  /// Returns the number of rows read (0 at end of stream).
  Result<std::uint64_t> NextBatch(std::uint64_t max_rows, PointTable* out);

  /// Rewinds to the first row.
  Status Reset();

  /// Total bytes read from disk so far (Fig. 13 disk-access metric).
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  ColumnStoreReader() = default;

  Status ReadAt(std::uint64_t offset, void* dst, std::uint64_t bytes);

  std::string path_;
  mutable std::ifstream file_;
  ColumnStoreHeader header_;
  std::vector<std::string> names_;
  std::vector<std::uint32_t> columns_;
  std::uint64_t data_offset_ = 0;  ///< file offset where x[] begins
  std::uint64_t cursor_ = 0;       ///< next row to read
  std::uint64_t bytes_read_ = 0;
};

}  // namespace rj
