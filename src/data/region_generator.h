/// \file region_generator.h
/// \brief Synthetic polygon generator, exactly as §7.4 describes.
///
/// "To generate n polygons, we first randomly generated 4n points within
/// the rectangular extent of the data. We then computed the constrained
/// Voronoi diagram over these points [→ 4n convex cells partitioning the
/// extent]. Next, we randomly chose two neighboring polygons and merged
/// them into a single polygon. We repeated this step until only n polygons
/// remained." The merge step produces concave, complex, multi-hundred-
/// vertex shapes like the real neighborhood/county data sets (Table 1).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "geometry/bbox.h"
#include "geometry/polygon.h"

namespace rj {

struct RegionGeneratorOptions {
  std::uint64_t seed = 42;
  /// Seed sites per requested polygon (paper uses 4).
  int sites_per_polygon = 4;
};

/// Generates `n` polygons partitioning `extent` via merged Voronoi cells.
/// Ids are assigned 0..n-1.
Result<PolygonSet> GenerateRegions(std::size_t n, const BBox& extent,
                                   const RegionGeneratorOptions& options = {});

}  // namespace rj
