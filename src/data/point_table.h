/// \file point_table.h
/// \brief Columnar in-memory point data set (the P relation).
///
/// Struct-of-arrays layout mirrors the paper's setup: "the data is stored
/// as columns on disk and the required columns are loaded into main memory"
/// (§7.1). Locations are doubles; attribute columns are float32, matching
/// what the paper ships to the GPU in the VBO.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geometry/bbox.h"
#include "geometry/point.h"

namespace rj {

class PointTable {
 public:
  PointTable() = default;

  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }

  void Reserve(std::size_t n) {
    x_.reserve(n);
    y_.reserve(n);
    for (auto& col : attrs_) col.reserve(n);
  }

  /// Declares an attribute column; must be called before adding points.
  /// Returns the column index.
  std::size_t AddAttribute(std::string name) {
    attr_names_.push_back(std::move(name));
    attrs_.emplace_back(x_.size(), 0.0f);
    return attrs_.size() - 1;
  }

  /// Appends a point; `attr_values` must have one entry per declared column.
  void Append(double px, double py, const std::vector<float>& attr_values) {
    extent_valid_ = false;
    x_.push_back(px);
    y_.push_back(py);
    for (std::size_t c = 0; c < attrs_.size(); ++c) {
      attrs_[c].push_back(c < attr_values.size() ? attr_values[c] : 0.0f);
    }
  }
  void Append(double px, double py) { Append(px, py, {}); }

  /// Replaces the table's contents with fully-built columns, moved in
  /// wholesale — the bulk-materialization path for readers that already
  /// hold column vectors (ColumnStoreReader, BlockFileReader), which would
  /// otherwise re-copy every row through Append. All column vectors must
  /// share one length and `attrs` must match `names` in count.
  void AdoptColumns(std::vector<double> xs, std::vector<double> ys,
                    std::vector<std::string> names,
                    std::vector<std::vector<float>> attrs) {
    assert(xs.size() == ys.size());
    assert(names.size() == attrs.size());
    x_ = std::move(xs);
    y_ = std::move(ys);
    attr_names_ = std::move(names);
    attrs_ = std::move(attrs);
    extent_valid_ = false;
  }

  Point At(std::size_t i) const { return {x_[i], y_[i]}; }

  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }

  std::size_t num_attributes() const { return attrs_.size(); }
  const std::vector<std::string>& attribute_names() const {
    return attr_names_;
  }
  const std::vector<float>& attribute(std::size_t col) const {
    return attrs_[col];
  }
  std::vector<float>& mutable_attribute(std::size_t col) {
    return attrs_[col];
  }
  const std::string& attribute_name(std::size_t col) const {
    return attr_names_[col];
  }

  /// Index of the named column, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t FindAttribute(const std::string& name) const {
    for (std::size_t c = 0; c < attr_names_.size(); ++c) {
      if (attr_names_[c] == name) return c;
    }
    return npos;
  }

  /// Bounding box of all locations. O(n) unless CacheExtent() ran after
  /// the last mutation, in which case the cached box is returned.
  BBox Extent() const {
    if (extent_valid_) return cached_extent_;
    BBox box;
    for (std::size_t i = 0; i < size(); ++i) box.Expand(At(i));
    return box;
  }

  /// Computes and caches the extent so subsequent Extent() calls are O(1).
  /// Call once after the table is fully built and *before* sharing it
  /// across threads — the cache write is unsynchronized (single-writer-
  /// before-sharing, like the rest of the table). Appending invalidates.
  const BBox& CacheExtent() {
    extent_valid_ = false;
    cached_extent_ = Extent();
    extent_valid_ = true;
    return cached_extent_;
  }

  /// Bytes per point shipped to the device: x, y as float32 plus each
  /// referenced attribute as float32 (the paper packs the VBO this way).
  static std::size_t DeviceBytesPerPoint(std::size_t num_referenced_attrs) {
    return 2 * sizeof(float) + num_referenced_attrs * sizeof(float);
  }

  /// Copies rows [begin, end) into a new table with the same schema.
  PointTable Slice(std::size_t begin, std::size_t end) const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<std::vector<float>> attrs_;
  std::vector<std::string> attr_names_;
  BBox cached_extent_;
  bool extent_valid_ = false;
};

inline PointTable PointTable::Slice(std::size_t begin, std::size_t end) const {
  PointTable out;
  for (const auto& name : attr_names_) out.AddAttribute(name);
  out.Reserve(end - begin);
  std::vector<float> vals(attrs_.size());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t c = 0; c < attrs_.size(); ++c) vals[c] = attrs_[c][i];
    out.Append(x_[i], y_[i], vals);
  }
  return out;
}

}  // namespace rj
