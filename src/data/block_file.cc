#include "data/block_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>

#include "data/column_store.h"
#include "data/sharded_table.h"

namespace rj::data {

namespace {

constexpr std::uint64_t kAlign = 8;

/// Format bound on schema width — far above any real dataset, low enough
/// that per-row byte math cannot overflow on hostile headers.
constexpr std::uint64_t kMaxAttributes = 4096;

std::uint64_t AlignUp(std::uint64_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

Status WriteBytes(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out.good()) return Status::IOError("write failed");
  return Status::OK();
}

/// Quantizes a coordinate into [0, cells-1] over [lo, hi] (the
/// sharded_table placement rule). Non-finite coordinates and degenerate
/// extents collapse to cell 0 — such rows sort to the front, they are
/// merely unclustered.
std::uint32_t QuantizeCoord(double v, double lo, double hi,
                            std::uint64_t cells) {
  if (!(hi > lo)) return 0;
  const double t = (v - lo) / (hi - lo);
  if (!std::isfinite(t)) return 0;
  auto cell = static_cast<std::int64_t>(t * static_cast<double>(cells));
  cell =
      std::clamp<std::int64_t>(cell, 0, static_cast<std::int64_t>(cells) - 1);
  return static_cast<std::uint32_t>(cell);
}

/// Bytes of one block's column data (pre-padding): x/y doubles plus one
/// float column per attribute.
std::uint64_t BlockDataBytes(std::uint64_t rows, std::uint64_t num_attrs) {
  return rows * (2 * sizeof(double) + num_attrs * sizeof(float));
}

/// Bounds-checked little parser over the mapped header region.
class Cursor {
 public:
  Cursor(const unsigned char* base, std::uint64_t size)
      : base_(base), size_(size) {}

  std::uint64_t offset() const { return off_; }

  template <typename T>
  bool Read(T* out) {
    if (off_ + sizeof(T) > size_) return false;
    std::memcpy(out, base_ + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  bool ReadString(std::uint32_t len, std::string* out) {
    if (off_ + len > size_) return false;
    out->assign(reinterpret_cast<const char*>(base_ + off_), len);
    off_ += len;
    return true;
  }

  bool Skip(std::uint64_t bytes) {
    if (off_ + bytes > size_) return false;
    off_ += bytes;
    return true;
  }

 private:
  const unsigned char* base_;
  std::uint64_t size_;
  std::uint64_t off_ = 0;
};

}  // namespace

BlockFileWriter::BlockFileWriter(BlockFileOptions options)
    : options_(options) {}

Status BlockFileWriter::Write(const std::string& path,
                              const PointTable& table) const {
  if (options_.block_capacity == 0) {
    return Status::InvalidArgument("block_capacity must be at least 1");
  }
  if (options_.hilbert_order == 0 || options_.hilbert_order > 31) {
    return Status::InvalidArgument("hilbert_order must be in [1, 31]");
  }
  if (table.num_attributes() > kMaxAttributes) {
    return Status::InvalidArgument("too many attribute columns for the "
                                   "block-file format");
  }

  const std::size_t n = table.size();
  const std::size_t num_attrs = table.num_attributes();
  const BBox extent = table.Extent();

  // The on-disk row order: Hilbert-sorted (stable, so equal cells keep
  // input order and the permutation is fully deterministic) or the input
  // order verbatim.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options_.hilbert_cluster && n > 0) {
    const std::uint64_t cells = 1ull << options_.hilbert_order;
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t cx =
          QuantizeCoord(table.xs()[i], extent.min_x, extent.max_x, cells);
      const std::uint32_t cy =
          QuantizeCoord(table.ys()[i], extent.min_y, extent.max_y, cells);
      keys[i] = HilbertIndex(options_.hilbert_order, cx, cy);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&keys](std::size_t a, std::size_t b) {
                       return keys[a] < keys[b];
                     });
  }

  // Materialize the permuted table once (bulk column gather) so zone maps
  // and the data region both read contiguous columns.
  PointTable ordered;
  {
    std::vector<double> xs(n), ys(n);
    std::vector<std::vector<float>> cols(num_attrs);
    std::vector<std::string> names;
    names.reserve(num_attrs);
    for (std::size_t c = 0; c < num_attrs; ++c) {
      cols[c].resize(n);
      names.push_back(table.attribute_name(c));
    }
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = order[k];
      xs[k] = table.xs()[i];
      ys[k] = table.ys()[i];
      for (std::size_t c = 0; c < num_attrs; ++c) {
        cols[c][k] = table.attribute(c)[i];
      }
    }
    ordered.AdoptColumns(std::move(xs), std::move(ys), std::move(names),
                         std::move(cols));
  }

  const std::uint64_t cap = options_.block_capacity;
  const std::uint64_t num_blocks = n == 0 ? 0 : (n + cap - 1) / cap;

  // Offsets: header, fixed fields, names, block metadata, then the 8-byte
  // aligned data region.
  std::uint64_t names_bytes = 0;
  for (std::size_t c = 0; c < num_attrs; ++c) {
    names_bytes += sizeof(std::uint32_t) + table.attribute_name(c).size();
  }
  const std::uint64_t meta_entry_bytes =
      2 * sizeof(std::uint64_t) + 4 * sizeof(double) +
      2 * num_attrs * sizeof(float);
  const std::uint64_t meta_begin = sizeof(ColumnStoreHeader) +
                                   2 * sizeof(std::uint64_t) +
                                   4 * sizeof(double) + names_bytes;
  std::uint64_t offset = AlignUp(meta_begin + num_blocks * meta_entry_bytes);
  std::vector<std::uint64_t> block_offsets(num_blocks);
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    block_offsets[b] = offset;
    const std::uint64_t rows =
        std::min<std::uint64_t>(cap, n - b * cap);
    offset = AlignUp(offset + BlockDataBytes(rows, num_attrs));
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }

  ColumnStoreHeader header;
  header.num_rows = n;
  header.num_attributes = static_cast<std::uint32_t>(num_attrs);
  header.version = 2;
  RJ_RETURN_NOT_OK(WriteBytes(out, &header, sizeof(header)));
  RJ_RETURN_NOT_OK(WriteBytes(out, &cap, sizeof(cap)));
  RJ_RETURN_NOT_OK(WriteBytes(out, &num_blocks, sizeof(num_blocks)));
  const double ext[4] = {extent.min_x, extent.min_y, extent.max_x,
                         extent.max_y};
  RJ_RETURN_NOT_OK(WriteBytes(out, ext, sizeof(ext)));
  for (std::size_t c = 0; c < num_attrs; ++c) {
    const std::string& name = table.attribute_name(c);
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    RJ_RETURN_NOT_OK(WriteBytes(out, &len, sizeof(len)));
    RJ_RETURN_NOT_OK(WriteBytes(out, name.data(), len));
  }

  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    const std::uint64_t begin = b * cap;
    const std::uint64_t end = std::min<std::uint64_t>(n, begin + cap);
    const std::uint64_t rows = end - begin;
    const BlockZoneMap zone = ComputeZoneMap(ordered, begin, end);
    RJ_RETURN_NOT_OK(WriteBytes(out, &rows, sizeof(rows)));
    RJ_RETURN_NOT_OK(
        WriteBytes(out, &block_offsets[b], sizeof(block_offsets[b])));
    const double bbox[4] = {zone.bbox.min_x, zone.bbox.min_y, zone.bbox.max_x,
                            zone.bbox.max_y};
    RJ_RETURN_NOT_OK(WriteBytes(out, bbox, sizeof(bbox)));
    if (num_attrs > 0) {
      RJ_RETURN_NOT_OK(WriteBytes(out, zone.col_min.data(),
                                  num_attrs * sizeof(float)));
      RJ_RETURN_NOT_OK(WriteBytes(out, zone.col_max.data(),
                                  num_attrs * sizeof(float)));
    }
  }

  // Pad to the aligned data region, then emit each block's columns.
  const char zeros[kAlign] = {};
  std::uint64_t written = meta_begin + num_blocks * meta_entry_bytes;
  RJ_RETURN_NOT_OK(WriteBytes(out, zeros, AlignUp(written) - written));
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    const std::uint64_t begin = b * cap;
    const std::uint64_t end = std::min<std::uint64_t>(n, begin + cap);
    const std::uint64_t rows = end - begin;
    RJ_RETURN_NOT_OK(
        WriteBytes(out, ordered.xs().data() + begin, rows * sizeof(double)));
    RJ_RETURN_NOT_OK(
        WriteBytes(out, ordered.ys().data() + begin, rows * sizeof(double)));
    for (std::size_t c = 0; c < num_attrs; ++c) {
      RJ_RETURN_NOT_OK(WriteBytes(out, ordered.attribute(c).data() + begin,
                                  rows * sizeof(float)));
    }
    const std::uint64_t bytes = BlockDataBytes(rows, num_attrs);
    RJ_RETURN_NOT_OK(WriteBytes(out, zeros, AlignUp(bytes) - bytes));
  }
  out.flush();
  if (!out.good()) return Status::IOError("flush failed: " + path);
  return Status::OK();
}

BlockFileReader::~BlockFileReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
  }
}

Result<std::unique_ptr<BlockFileReader>> BlockFileReader::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open: " + path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size < sizeof(ColumnStoreHeader)) {
    ::close(fd);
    return Status::IOError("not a block file (truncated header): " + path);
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }

  auto reader = std::unique_ptr<BlockFileReader>(new BlockFileReader());
  reader->path_ = path;
  reader->map_ = static_cast<const unsigned char*>(map);
  reader->map_bytes_ = file_size;

  // Everything below is untrusted: validate each field against the actual
  // file size before allocating or dereferencing through it.
  Cursor cur(reader->map_, file_size);
  ColumnStoreHeader header;
  cur.Read(&header);  // size checked above
  if (header.magic != ColumnStoreHeader::kMagic) {
    return Status::IOError("not a column-store file: " + path);
  }
  if (header.version != 2) {
    return Status::IOError("not a v2 block file (version " +
                           std::to_string(header.version) +
                           "): " + path);
  }
  std::uint64_t cap = 0;
  std::uint64_t num_blocks = 0;
  double ext[4] = {};
  if (!cur.Read(&cap) || !cur.Read(&num_blocks) || !cur.Read(&ext)) {
    return Status::IOError("truncated block-file header: " + path);
  }
  if (cap == 0) {
    return Status::IOError("corrupt block file (zero block capacity): " +
                           path);
  }
  // Row data costs at least 2 doubles per row; a count the file cannot
  // possibly hold is corrupt. Bounding it here also keeps every byte-size
  // product below (rows × small factor) safely inside 64 bits.
  if (header.num_rows > file_size / (2 * sizeof(double))) {
    return Status::IOError("corrupt block file (row count): " + path);
  }
  const std::uint64_t num_attrs = header.num_attributes;
  // A name costs at least its 4-byte length prefix; a header claiming more
  // attributes than the file could possibly hold is corrupt — reject
  // before the loop, so a hostile count cannot drive allocations.
  // kMaxAttributes is the format's schema bound (the writer enforces it
  // too); it keeps per-row byte math far from overflow.
  if (num_attrs > kMaxAttributes ||
      num_attrs > file_size / sizeof(std::uint32_t)) {
    return Status::IOError("corrupt block file (attribute count): " + path);
  }
  reader->names_.reserve(num_attrs);
  for (std::uint64_t c = 0; c < num_attrs; ++c) {
    std::uint32_t len = 0;
    std::string name;
    if (!cur.Read(&len) || !cur.ReadString(len, &name)) {
      return Status::IOError("truncated attribute names: " + path);
    }
    reader->names_.push_back(std::move(name));
  }

  // Overflow-safe ceil(num_rows / cap): cap may be anything a hostile
  // header claims.
  const std::uint64_t expected_blocks =
      header.num_rows / cap + (header.num_rows % cap != 0 ? 1 : 0);
  if (num_blocks != expected_blocks) {
    return Status::IOError("corrupt block file (block count): " + path);
  }
  const std::uint64_t meta_entry_bytes =
      2 * sizeof(std::uint64_t) + 4 * sizeof(double) +
      2 * num_attrs * sizeof(float);
  if (num_blocks > (file_size - cur.offset()) / meta_entry_bytes) {
    return Status::IOError("truncated block metadata: " + path);
  }
  reader->blocks_.resize(num_blocks);
  std::uint64_t rows_total = 0;
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    BlockMeta& meta = reader->blocks_[b];
    double bbox[4] = {};
    if (!cur.Read(&meta.num_rows) || !cur.Read(&meta.data_offset) ||
        !cur.Read(&bbox)) {
      return Status::IOError("truncated block metadata: " + path);
    }
    meta.zone.bbox = BBox(bbox[0], bbox[1], bbox[2], bbox[3]);
    meta.zone.col_min.resize(num_attrs);
    meta.zone.col_max.resize(num_attrs);
    for (std::uint64_t c = 0; c < num_attrs; ++c) {
      if (!cur.Read(&meta.zone.col_min[c])) {
        return Status::IOError("truncated block metadata: " + path);
      }
    }
    for (std::uint64_t c = 0; c < num_attrs; ++c) {
      if (!cur.Read(&meta.zone.col_max[c])) {
        return Status::IOError("truncated block metadata: " + path);
      }
    }
    if (meta.num_rows == 0 || meta.num_rows > cap ||
        meta.num_rows > header.num_rows) {
      return Status::IOError("corrupt block file (block rows): " + path);
    }
    const std::uint64_t data_bytes = BlockDataBytes(meta.num_rows, num_attrs);
    if (meta.data_offset % kAlign != 0 || meta.data_offset > file_size ||
        data_bytes > file_size - meta.data_offset) {
      return Status::IOError("corrupt block file (block offset): " + path);
    }
    rows_total += meta.num_rows;
  }
  if (rows_total != header.num_rows) {
    return Status::IOError("corrupt block file (row count): " + path);
  }

  reader->num_rows_ = header.num_rows;
  reader->capacity_ = static_cast<std::size_t>(cap);
  reader->extent_ = BBox(ext[0], ext[1], ext[2], ext[3]);
  return reader;
}

Result<BlockRef> BlockFileReader::ReadBlock(std::size_t block,
                                            PointTable* scratch) const {
  if (block >= blocks_.size()) {
    return Status::OutOfRange("block index out of range");
  }
  if (scratch == nullptr) {
    return Status::InvalidArgument("ReadBlock requires a scratch table");
  }
  const BlockMeta& meta = blocks_[block];
  const auto n = static_cast<std::size_t>(meta.num_rows);
  const std::size_t num_attrs = names_.size();
  const unsigned char* p = map_ + meta.data_offset;

  std::vector<double> xs(n), ys(n);
  std::memcpy(xs.data(), p, n * sizeof(double));
  p += n * sizeof(double);
  std::memcpy(ys.data(), p, n * sizeof(double));
  p += n * sizeof(double);
  std::vector<std::vector<float>> cols(num_attrs);
  for (std::size_t c = 0; c < num_attrs; ++c) {
    cols[c].resize(n);
    std::memcpy(cols[c].data(), p, n * sizeof(float));
    p += n * sizeof(float);
  }
  scratch->AdoptColumns(std::move(xs), std::move(ys), names_,
                        std::move(cols));
  bytes_read_.fetch_add(BlockDataBytes(meta.num_rows, num_attrs),
                        std::memory_order_relaxed);
  return BlockRef{scratch, 0, n};
}

Result<BlockView> BlockFileReader::ViewBlock(std::size_t block,
                                             PointTable* scratch) const {
  (void)scratch;  // the mapping is the block storage
  if (block >= blocks_.size()) {
    return Status::OutOfRange("block index out of range");
  }
  const BlockMeta& meta = blocks_[block];
  const auto n = static_cast<std::size_t>(meta.num_rows);
  const std::size_t num_attrs = names_.size();
  // data_offset is validated 8-byte aligned by Open, and each column run
  // starts at an offset that is a multiple of its element size (x at 0,
  // y at 8n, attr c at 16n + 4cn), so the reinterpret casts below are
  // aligned accesses.
  const unsigned char* p = map_ + meta.data_offset;
  BlockView view;
  view.xs = reinterpret_cast<const double*>(p);
  view.ys = reinterpret_cast<const double*>(p + n * sizeof(double));
  const unsigned char* a = p + 2 * n * sizeof(double);
  view.attrs.resize(num_attrs);
  for (std::size_t c = 0; c < num_attrs; ++c) {
    view.attrs[c] = reinterpret_cast<const float*>(a + c * n * sizeof(float));
  }
  view.size = n;
  bytes_read_.fetch_add(BlockDataBytes(meta.num_rows, num_attrs),
                        std::memory_order_relaxed);
  return view;
}

Result<std::unique_ptr<PointBlockSource>> OpenPointBlockSource(
    const std::string& path, std::size_t v1_block_capacity) {
  ColumnStoreHeader header;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe.is_open()) return Status::IOError("cannot open: " + path);
    probe.read(reinterpret_cast<char*>(&header), sizeof(header));
    if (!probe.good() || header.magic != ColumnStoreHeader::kMagic) {
      return Status::IOError("not a column-store file: " + path);
    }
  }
  if (header.version == 2) {
    RJ_ASSIGN_OR_RETURN(std::unique_ptr<BlockFileReader> reader,
                        BlockFileReader::Open(path));
    return std::unique_ptr<PointBlockSource>(std::move(reader));
  }
  // v1 flat file: no block structure on disk — load it fully (the
  // pre-block behavior) and serve it through the in-memory adapter, with
  // zone maps so even v1 data prunes when its row order happens to
  // cluster.
  RJ_ASSIGN_OR_RETURN(PointTable table, ReadColumnStore(path));
  table.CacheExtent();
  auto source = std::make_unique<TableBlockSource>(
      std::move(table), std::max<std::size_t>(v1_block_capacity, 1));
  source->BuildZoneMaps();
  return std::unique_ptr<PointBlockSource>(std::move(source));
}

}  // namespace rj::data
