/// \file twitter_generator.h
/// \brief Synthetic geo-tagged-Twitter-like point data set over a
/// continental-US-scale extent (DESIGN.md §2 substitute).
///
/// Reproduces the relevant property of the real 2.29B-tweet feed: "a
/// denser concentration of tweets around large cities" (§7.1), with a
/// long-tailed mixture of city-centred Gaussians plus sparse rural
/// background, and favorite/retweet-count attributes.
#pragma once

#include <cstdint>

#include "data/point_table.h"
#include "geometry/bbox.h"

namespace rj {

/// US-scale extent in meters (~4500 km × 2800 km planar frame).
BBox UsExtentMeters();

struct TwitterGeneratorOptions {
  std::uint64_t seed = 20150601;
  /// Number of synthetic "cities" (Gaussian mixture components).
  std::size_t num_cities = 60;
  double city_fraction = 0.9;
};

enum TwitterColumn : std::size_t {
  kTweetFavorites = 0,
  kTweetRetweets = 1,
  kTweetHour = 2,
};

/// Generates `n` tweet-like points inside UsExtentMeters().
PointTable GenerateTwitterPoints(std::size_t n,
                                 const TwitterGeneratorOptions& options = {});

}  // namespace rj
