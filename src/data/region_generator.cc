#include "data/region_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "voronoi/voronoi.h"

namespace rj {

namespace {

/// Union-find over Voronoi cells.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Quantizes a coordinate pair to a 64-bit key so vertices computed by
/// different cells' clipping sequences snap together.
class VertexQuantizer {
 public:
  VertexQuantizer(const BBox& extent)
      : origin_(extent.min_x, extent.min_y),
        inv_step_(1048576.0 /  // 2^20 buckets per extent side
                  std::max(extent.Width(), extent.Height())) {}

  std::uint64_t Key(const Point& p) const {
    const auto qx = static_cast<std::uint32_t>(
        std::llround((p.x - origin_.x) * inv_step_));
    const auto qy = static_cast<std::uint32_t>(
        std::llround((p.y - origin_.y) * inv_step_));
    return (static_cast<std::uint64_t>(qx) << 32) | qy;
  }

 private:
  Point origin_;
  double inv_step_;
};

/// Directed boundary edge of a merged group.
struct DirectedEdge {
  Point from, to;
  std::uint64_t from_key, to_key;
  bool used = false;
};

/// Removes consecutive duplicates and zero-area spikes (A→B→A reversals)
/// so ear clipping receives clean input.
Ring SanitizeRing(Ring ring) {
  bool changed = true;
  while (changed && ring.size() >= 3) {
    changed = false;
    Ring out;
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point& prev = ring[(i + n - 1) % n];
      const Point& cur = ring[i];
      const Point& next = ring[(i + 1) % n];
      if (cur == prev) {
        changed = true;
        continue;  // duplicate
      }
      // Spike: the ring doubles back along the same line (zero area).
      if (Orient2D(prev, cur, next) == 0.0 &&
          (next - cur).Dot(prev - cur) > 0.0) {
        changed = true;
        continue;
      }
      out.push_back(cur);
    }
    ring = std::move(out);
  }
  return ring;
}

/// Dissolves a group of CCW cells into boundary rings: collects all
/// directed edges, cancels edge pairs that appear in both directions
/// (interior edges between group members), and stitches the rest into
/// closed rings. Returns rings sorted by |area| descending (first = outer).
std::vector<Ring> DissolveCells(const std::vector<const Ring*>& cells,
                                const VertexQuantizer& quant) {
  // Count directed edges; interior edges appear once in each direction.
  std::unordered_map<std::uint64_t, int> undirected_count;
  auto edge_key = [](std::uint64_t a, std::uint64_t b) {
    return a < b ? (a ^ (b << 1)) * 0x9E3779B97F4A7C15ull + a
                 : (b ^ (a << 1)) * 0x9E3779B97F4A7C15ull + b;
  };

  std::vector<DirectedEdge> edges;
  for (const Ring* cell : cells) {
    const std::size_t m = cell->size();
    for (std::size_t i = 0; i < m; ++i) {
      DirectedEdge e;
      e.from = (*cell)[i];
      e.to = (*cell)[(i + 1) % m];
      e.from_key = quant.Key(e.from);
      e.to_key = quant.Key(e.to);
      if (e.from_key == e.to_key) continue;  // collapsed by quantization
      edges.push_back(e);
      undirected_count[edge_key(e.from_key, e.to_key)]++;
    }
  }

  // Keep only boundary edges (count 1).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> out_edges;
  std::vector<std::size_t> boundary;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (undirected_count[edge_key(edges[i].from_key, edges[i].to_key)] == 1) {
      boundary.push_back(i);
      out_edges[edges[i].from_key].push_back(i);
    }
  }

  // Stitch rings with planar face traversal: at a junction vertex with
  // several unused outgoing edges, take the sharpest counter-clockwise
  // turn relative to the incoming direction. This keeps each stitched
  // ring a simple face even when merged groups touch at a single vertex
  // (a pinch) — arbitrary edge choice there would braid two lobes into a
  // self-intersecting ring.
  auto angle_of = [](const Point& d) { return std::atan2(d.y, d.x); };
  std::vector<Ring> rings;
  for (const std::size_t start : boundary) {
    if (edges[start].used) continue;
    Ring ring;
    std::size_t cur = start;
    while (!edges[cur].used) {
      edges[cur].used = true;
      ring.push_back(edges[cur].from);
      const std::uint64_t next_key = edges[cur].to_key;
      const auto it = out_edges.find(next_key);
      if (it == out_edges.end()) break;  // open chain (shouldn't happen)
      std::size_t next = static_cast<std::size_t>(-1);
      double best_turn = std::numeric_limits<double>::infinity();
      const double in_angle = angle_of(edges[cur].from - edges[cur].to);
      for (const std::size_t cand : it->second) {
        if (edges[cand].used) continue;
        // CW turn angle from the reversed incoming edge to the candidate,
        // in (0, 2π]; smallest = sharpest CCW face turn.
        const double out_angle =
            angle_of(edges[cand].to - edges[cand].from);
        double turn = in_angle - out_angle;
        while (turn <= 0.0) turn += 2.0 * 3.14159265358979323846;
        while (turn > 2.0 * 3.14159265358979323846) {
          turn -= 2.0 * 3.14159265358979323846;
        }
        if (turn < best_turn) {
          best_turn = turn;
          next = cand;
        }
      }
      if (next == static_cast<std::size_t>(-1)) break;  // ring closed
      cur = next;
    }
    ring = SanitizeRing(std::move(ring));
    if (ring.size() >= 3 && SignedArea(ring) != 0.0) {
      rings.push_back(std::move(ring));
    }
  }

  std::sort(rings.begin(), rings.end(), [](const Ring& a, const Ring& b) {
    return std::fabs(SignedArea(a)) > std::fabs(SignedArea(b));
  });
  return rings;
}

}  // namespace

Result<PolygonSet> GenerateRegions(std::size_t n, const BBox& extent,
                                   const RegionGeneratorOptions& options) {
  if (n == 0) return Status::InvalidArgument("need n >= 1 polygons");
  if (options.sites_per_polygon < 1) {
    return Status::InvalidArgument("sites_per_polygon must be >= 1");
  }

  Rng rng(options.seed);
  const std::size_t num_sites = n * static_cast<std::size_t>(
                                        options.sites_per_polygon);

  // 1. Random sites → constrained Voronoi partition of the extent (§7.4).
  std::vector<Point> sites;
  sites.reserve(num_sites);
  for (std::size_t i = 0; i < num_sites; ++i) {
    sites.push_back({rng.Uniform(extent.min_x, extent.max_x),
                     rng.Uniform(extent.min_y, extent.max_y)});
  }
  RJ_ASSIGN_OR_RETURN(VoronoiDiagram vd, ComputeVoronoi(sites, extent));

  // Orient all cells CCW so dissolve stitching is consistent; drop empties.
  std::vector<Ring> cells(vd.cells.size());
  std::vector<bool> valid(vd.cells.size(), false);
  for (std::size_t i = 0; i < vd.cells.size(); ++i) {
    if (vd.cells[i].size() < 3) continue;
    cells[i] = vd.cells[i];
    if (!IsCounterClockwise(cells[i])) ReverseRing(&cells[i]);
    valid[i] = true;
  }

  // 2. Randomly merge adjacent cells until n groups remain.
  std::size_t groups = 0;
  for (const bool v : valid) groups += v ? 1 : 0;
  if (groups < n) {
    return Status::Internal("Voronoi produced fewer valid cells than needed");
  }

  // Candidate adjacent pairs: cells sharing a positive-length boundary
  // edge. (Delaunay neighborhood is not sufficient — after clipping to the
  // domain two neighboring sites' cells may share only a point, and
  // merging those would create a disconnected "polygon".)
  const VertexQuantizer quant(extent);
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> edge_owners;
  auto undirected_key = [](std::uint64_t a, std::uint64_t b) {
    if (a > b) std::swap(a, b);
    return (a ^ (b << 1)) * 0x9E3779B97F4A7C15ull + a;
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!valid[i]) continue;
    const Ring& cell = cells[i];
    for (std::size_t e = 0; e < cell.size(); ++e) {
      const std::uint64_t ka = quant.Key(cell[e]);
      const std::uint64_t kb = quant.Key(cell[(e + 1) % cell.size()]);
      if (ka == kb) continue;
      edge_owners[undirected_key(ka, kb)].push_back(
          static_cast<std::int32_t>(i));
    }
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> adjacent;
  for (const auto& [key, owners] : edge_owners) {
    if (owners.size() == 2 && owners[0] != owners[1]) {
      adjacent.push_back({std::min(owners[0], owners[1]),
                          std::max(owners[0], owners[1])});
    }
  }

  DisjointSets ds(cells.size());
  while (groups > n && !adjacent.empty()) {
    const std::size_t pick = rng.UniformInt(adjacent.size());
    const auto [a, b] = adjacent[pick];
    if (ds.Union(a, b)) --groups;
    adjacent[pick] = adjacent.back();
    adjacent.pop_back();
  }
  if (groups != n) {
    return Status::Internal(
        "adjacency exhausted before reaching the target polygon count");
  }

  // 3. Dissolve each group into one polygon (outer ring + holes).
  std::unordered_map<std::size_t, std::vector<const Ring*>> members;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (valid[i]) members[ds.Find(i)].push_back(&cells[i]);
  }

  PolygonSet polys;
  polys.reserve(n);
  for (auto& [root, group_cells] : members) {
    std::vector<Ring> rings = DissolveCells(group_cells, quant);
    if (rings.empty()) {
      return Status::Internal("dissolve produced no boundary ring");
    }
    // Face traversal over CCW cells yields exactly one CCW outer boundary
    // per edge-connected group; CW rings are genuine holes (the group
    // fully surrounds another group).
    Ring outer;
    std::vector<Ring> holes;
    for (Ring& ring : rings) {
      if (IsCounterClockwise(ring)) {
        if (!outer.empty()) {
          return Status::Internal(
              "dissolve produced a disconnected polygon group");
        }
        outer = std::move(ring);
      } else {
        holes.push_back(std::move(ring));
      }
    }
    if (outer.empty()) {
      return Status::Internal("dissolve produced no outer ring");
    }
    Polygon poly(std::move(outer), std::move(holes));
    poly.set_id(static_cast<std::int64_t>(polys.size()));
    RJ_RETURN_NOT_OK(poly.Normalize());
    polys.push_back(std::move(poly));
  }
  return polys;
}

}  // namespace rj
