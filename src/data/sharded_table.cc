#include "data/sharded_table.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rj::data {

namespace {

/// Quantizes a coordinate into [0, cells-1] over [lo, hi]. Degenerate
/// extents (all points share a coordinate) collapse to cell 0.
std::uint32_t Quantize(double v, double lo, double hi, std::uint64_t cells) {
  if (hi <= lo) return 0;
  const double t = (v - lo) / (hi - lo);
  auto cell = static_cast<std::int64_t>(t * static_cast<double>(cells));
  cell = std::clamp<std::int64_t>(cell, 0, static_cast<std::int64_t>(cells) - 1);
  return static_cast<std::uint32_t>(cell);
}

/// Copies the rows of `base` named by indexes [begin, end) of `order` into
/// a fresh table with the same schema.
PointTable GatherRows(const PointTable& base,
                      const std::vector<std::size_t>& order,
                      std::size_t begin, std::size_t end) {
  PointTable out;
  for (std::size_t c = 0; c < base.num_attributes(); ++c) {
    out.AddAttribute(base.attribute_name(c));
  }
  out.Reserve(end - begin);
  std::vector<float> vals(base.num_attributes());
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = order[k];
    for (std::size_t c = 0; c < base.num_attributes(); ++c) {
      vals[c] = base.attribute(c)[i];
    }
    out.Append(base.xs()[i], base.ys()[i], vals);
  }
  return out;
}

}  // namespace

std::string ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRoundRobin: return "round-robin";
    case ShardPolicy::kHilbert: return "hilbert";
  }
  return "?";
}

std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y) {
  // Standard iterative xy→d conversion (Hilbert 1891 via Warren, Hacker's
  // Delight §16): walk quadrants from the top bit down, rotating the frame.
  std::uint64_t d = 0;
  for (std::uint32_t s = order; s-- > 0;) {
    const std::uint32_t rx = (x >> s) & 1u;
    const std::uint32_t ry = (y >> s) & 1u;
    d += (static_cast<std::uint64_t>((3u * rx) ^ ry)) << (2 * s);
    // Rotate the sub-square so the next level sees canonical orientation.
    if (ry == 0) {
      if (rx == 1) {
        // Reflect within the sub-square: only bits below s are still live.
        const std::uint32_t mask = (1u << s) - 1u;
        x = mask & ~x;
        y = mask & ~y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

Result<ShardedTable> ShardedTable::Partition(const PointTable& base,
                                             const ShardingOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (options.policy == ShardPolicy::kHilbert &&
      (options.hilbert_order == 0 || options.hilbert_order > 31)) {
    return Status::InvalidArgument("hilbert_order must be in [1, 31]");
  }

  ShardedTable out;
  out.options_ = options;
  out.extent_ = base.Extent();
  out.total_points_ = base.size();

  const std::size_t n = base.size();
  const std::size_t s_count = options.num_shards;

  // Row order determines the shard cut. Round-robin keeps original order
  // (interleaved assignment below); Hilbert sorts by curve index with the
  // original index as tiebreak, so equal cells keep insertion order and
  // the partition is fully deterministic.
  if (options.policy == ShardPolicy::kRoundRobin) {
    // Shard s takes rows s, s+S, s+2S, ... in original order: gather the
    // strided index list per shard.
    out.shards_.reserve(s_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      std::vector<std::size_t> picks;
      picks.reserve(n / s_count + 1);
      for (std::size_t i = s; i < n; i += s_count) picks.push_back(i);
      out.shards_.push_back(GatherRows(base, picks, 0, picks.size()));
    }
  } else {
    const std::uint64_t cells = 1ull << options.hilbert_order;
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t cx =
          Quantize(base.xs()[i], out.extent_.min_x, out.extent_.max_x, cells);
      const std::uint32_t cy =
          Quantize(base.ys()[i], out.extent_.min_y, out.extent_.max_y, cells);
      keys[i] = HilbertIndex(options.hilbert_order, cx, cy);
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&keys](std::size_t a, std::size_t b) {
                       return keys[a] < keys[b];
                     });
    // Equal contiguous runs along the curve: shard s covers sorted rows
    // [s*n/S, (s+1)*n/S) — sizes differ by at most one.
    out.shards_.reserve(s_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      const std::size_t begin = s * n / s_count;
      const std::size_t end = (s + 1) * n / s_count;
      out.shards_.push_back(GatherRows(base, order, begin, end));
    }
  }

  for (const PointTable& shard : out.shards_) {
    out.max_shard_points_ = std::max(out.max_shard_points_, shard.size());
  }
  return out;
}

}  // namespace rj::data
