#include "data/sharded_table.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rj::data {

namespace {

/// Quantizes a coordinate into [0, cells-1] over [lo, hi]. Degenerate
/// extents (all points share a coordinate) collapse to cell 0.
std::uint32_t Quantize(double v, double lo, double hi, std::uint64_t cells) {
  if (hi <= lo) return 0;
  const double t = (v - lo) / (hi - lo);
  auto cell = static_cast<std::int64_t>(t * static_cast<double>(cells));
  cell = std::clamp<std::int64_t>(cell, 0, static_cast<std::int64_t>(cells) - 1);
  return static_cast<std::uint32_t>(cell);
}

/// Copies the rows of `base` named by indexes [begin, end) of `order` into
/// a fresh table with the same schema.
PointTable GatherRows(const PointTable& base,
                      const std::vector<std::size_t>& order,
                      std::size_t begin, std::size_t end) {
  PointTable out;
  for (std::size_t c = 0; c < base.num_attributes(); ++c) {
    out.AddAttribute(base.attribute_name(c));
  }
  out.Reserve(end - begin);
  std::vector<float> vals(base.num_attributes());
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = order[k];
    for (std::size_t c = 0; c < base.num_attributes(); ++c) {
      vals[c] = base.attribute(c)[i];
    }
    out.Append(base.xs()[i], base.ys()[i], vals);
  }
  return out;
}

}  // namespace

std::string ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRoundRobin: return "round-robin";
    case ShardPolicy::kHilbert: return "hilbert";
  }
  return "?";
}

std::string HilbertCutModeName(HilbertCutMode mode) {
  switch (mode) {
    case HilbertCutMode::kQuantile: return "quantile";
    case HilbertCutMode::kEqualRange: return "equal-range";
  }
  return "?";
}

std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y) {
  // Standard iterative xy→d conversion (Hilbert 1891 via Warren, Hacker's
  // Delight §16): walk quadrants from the top bit down, rotating the frame.
  std::uint64_t d = 0;
  for (std::uint32_t s = order; s-- > 0;) {
    const std::uint32_t rx = (x >> s) & 1u;
    const std::uint32_t ry = (y >> s) & 1u;
    d += (static_cast<std::uint64_t>((3u * rx) ^ ry)) << (2 * s);
    // Rotate the sub-square so the next level sees canonical orientation.
    if (ry == 0) {
      if (rx == 1) {
        // Reflect within the sub-square: only bits below s are still live.
        const std::uint32_t mask = (1u << s) - 1u;
        x = mask & ~x;
        y = mask & ~y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

Result<ShardedTable> ShardedTable::Partition(const PointTable& base,
                                             const ShardingOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (options.policy == ShardPolicy::kHilbert &&
      (options.hilbert_order == 0 || options.hilbert_order > 31)) {
    return Status::InvalidArgument("hilbert_order must be in [1, 31]");
  }

  ShardedTable out;
  out.options_ = options;
  out.extent_ = base.Extent();
  out.total_points_ = base.size();

  const std::size_t n = base.size();
  const std::size_t s_count = options.num_shards;

  // Row order determines the shard cut. Round-robin keeps original order
  // (interleaved assignment below); Hilbert sorts by curve index with the
  // original index as tiebreak, so equal cells keep insertion order and
  // the partition is fully deterministic.
  if (options.policy == ShardPolicy::kRoundRobin) {
    // Shard s takes rows s, s+S, s+2S, ... in original order: gather the
    // strided index list per shard.
    out.shards_.reserve(s_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      std::vector<std::size_t> picks;
      picks.reserve(n / s_count + 1);
      for (std::size_t i = s; i < n; i += s_count) picks.push_back(i);
      out.shards_.push_back(GatherRows(base, picks, 0, picks.size()));
    }
  } else {
    const std::uint64_t cells = 1ull << options.hilbert_order;
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t cx =
          Quantize(base.xs()[i], out.extent_.min_x, out.extent_.max_x, cells);
      const std::uint32_t cy =
          Quantize(base.ys()[i], out.extent_.min_y, out.extent_.max_y, cells);
      keys[i] = HilbertIndex(options.hilbert_order, cx, cy);
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&keys](std::size_t a, std::size_t b) {
                       return keys[a] < keys[b];
                     });

    // S-1 ascending cut keys: shard s covers keys in [cuts[s-1], cuts[s]).
    // Duplicate cut keys are legal and yield empty shards.
    std::vector<std::uint64_t> cuts;
    cuts.reserve(s_count > 0 ? s_count - 1 : 0);
    if (options.cut_mode == HilbertCutMode::kEqualRange) {
      // Legacy baseline: S equal ranges of the key space [0, 4^order).
      // Spatially uniform, so clustered data piles into few shards.
      const std::uint64_t key_count = 1ull << (2 * options.hilbert_order);
      const std::uint64_t width = (key_count + s_count - 1) / s_count;
      for (std::size_t s = 1; s < s_count; ++s) {
        cuts.push_back(static_cast<std::uint64_t>(s) * width);
      }
    } else {
      // Sample quantiles of the observed keys: a deterministic strided
      // sample (first row of every stride, ascending original index) is
      // sorted and cut at ranks s/S. Cutting on key values rather than
      // sorted positions keeps equal keys together, so shard key ranges
      // are disjoint and the per-shard bounding boxes stay compact.
      const std::size_t target =
          std::min<std::size_t>(n, std::max<std::size_t>(s_count * 1024,
                                                         std::size_t{16384}));
      std::vector<std::uint64_t> sample;
      if (target > 0) {
        const std::size_t stride = std::max<std::size_t>(1, n / target);
        sample.reserve(n / stride + 1);
        for (std::size_t i = 0; i < n; i += stride) sample.push_back(keys[i]);
        std::sort(sample.begin(), sample.end());
      }
      for (std::size_t s = 1; s < s_count; ++s) {
        cuts.push_back(sample.empty()
                           ? 0
                           : sample[s * sample.size() / s_count]);
      }
    }

    // The sorted order is contiguous per shard (assignment is monotone in
    // key), so each cut key maps to one boundary position via lower_bound
    // over the sorted keys.
    std::vector<std::size_t> bounds;
    bounds.reserve(s_count + 1);
    bounds.push_back(0);
    for (const std::uint64_t cut : cuts) {
      auto it = std::lower_bound(order.begin(), order.end(), cut,
                                 [&keys](std::size_t idx, std::uint64_t k) {
                                   return keys[idx] < k;
                                 });
      bounds.push_back(static_cast<std::size_t>(it - order.begin()));
    }
    bounds.push_back(n);
    out.shards_.reserve(s_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      out.shards_.push_back(GatherRows(base, order, bounds[s], bounds[s + 1]));
    }
  }

  out.zones_.reserve(out.shards_.size());
  for (const PointTable& shard : out.shards_) {
    out.max_shard_points_ = std::max(out.max_shard_points_, shard.size());
    out.zones_.push_back(ComputeZoneMap(shard, 0, shard.size()));
  }
  return out;
}

}  // namespace rj::data
