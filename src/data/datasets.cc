#include "data/datasets.h"

namespace rj {

Result<PolygonSet> NycNeighborhoods() {
  RegionGeneratorOptions options;
  options.seed = 2601;
  return GenerateRegions(260, NycExtentMeters(), options);
}

Result<PolygonSet> UsCounties() {
  RegionGeneratorOptions options;
  options.seed = 3945;
  return GenerateRegions(3945, UsExtentMeters(), options);
}

Result<PolygonSet> TinyRegions(std::size_t n, const BBox& extent,
                               std::uint64_t seed) {
  RegionGeneratorOptions options;
  options.seed = seed;
  return GenerateRegions(n, extent, options);
}

}  // namespace rj
