/// \file block_file.h
/// \brief v2 chunked column-store format ("block file"): Hilbert-clustered
/// fixed-capacity blocks with header zone maps, read through mmap.
///
/// The v1 format (column_store.h) is one flat column region — fine for
/// sequential streaming, useless for skipping. v2 chunks the rows into
/// fixed-capacity blocks, reorders them along a Hilbert curve at write
/// time so block bboxes are tight, and stores per-block zone maps (bbox +
/// per-column min/max) in the header, so a reader can prune blocks a
/// query's canvas or filters can never touch without reading their data.
/// Layout (all integers little-endian-native, as v1):
///
///   ColumnStoreHeader      magic, num_rows, num_attributes, version=2
///   u64 block_capacity     rows per block (last block may be short)
///   u64 num_blocks
///   f64 ×4                 global extent: min_x, min_y, max_x, max_y
///   names                  per attribute: u32 len, bytes
///   block metadata ×num_blocks:
///     u64 num_rows
///     u64 data_offset      absolute file offset of the block's data
///     f64 ×4               block bbox
///     f32 ×num_attributes  per-column min
///     f32 ×num_attributes  per-column max
///   (pad to 8)
///   block data ×num_blocks, each padded to 8 bytes:
///     f64 x[n], f64 y[n], f32 attr0[n], …, f32 attrK[n]
///
/// Blocks are 8-byte aligned so a zero-copy reader may reinterpret the
/// mapped doubles in place — ViewBlock does exactly that, returning
/// column pointers into the RAM-cached mapping; ReadBlock remains the
/// copying path, memcpy'ing each block's columns into a caller scratch
/// table (see mmap lifetime rules in docs/STORAGE.md — both a BlockRef
/// into scratch and a BlockView into the mapping obey the same lifetime
/// bound: invalidated by the next read into the same scratch or by the
/// reader's death).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/point_block_source.h"

namespace rj::data {

struct BlockFileOptions {
  /// Rows per block. Smaller blocks prune at finer grain but cost more
  /// header metadata and more per-block pipeline overhead.
  std::size_t block_capacity = 1u << 16;

  /// Reorder rows along the Hilbert curve before chunking, so spatially
  /// adjacent rows land in the same block and bboxes are tight. Off keeps
  /// the input row order (blocks still carry exact zone maps, they are
  /// just unlikely to be prunable on scrambled data).
  bool hilbert_cluster = true;

  /// Hilbert curve order (grid is 2^order × 2^order); [1, 31].
  std::uint32_t hilbert_order = 16;
};

/// Writes v2 block files. Stateless apart from options; one writer may
/// serve many Write calls.
class BlockFileWriter {
 public:
  explicit BlockFileWriter(BlockFileOptions options = {});

  /// Writes `table` to `path`, (optionally) Hilbert-reordering the rows.
  /// The on-disk row order is deterministic: rows sort stably by Hilbert
  /// cell, equal cells keeping input order.
  Status Write(const std::string& path, const PointTable& table) const;

 private:
  BlockFileOptions options_;
};

/// mmap-backed reader over a v2 block file. Open validates every header
/// field and block offset against the actual file size before trusting it
/// (corrupt or hostile files fail with IOError, they cannot drive
/// allocations or out-of-bounds reads). The mapping lives for the reader's
/// lifetime; ReadBlock copies one block's columns out of it into the
/// caller's scratch, so concurrent readers only share read-only pages.
class BlockFileReader final : public PointBlockSource {
 public:
  static Result<std::unique_ptr<BlockFileReader>> Open(
      const std::string& path);

  ~BlockFileReader() override;

  BlockFileReader(const BlockFileReader&) = delete;
  BlockFileReader& operator=(const BlockFileReader&) = delete;

  const std::vector<std::string>& attribute_names() const override {
    return names_;
  }
  std::uint64_t num_rows() const override { return num_rows_; }
  std::size_t num_blocks() const override { return blocks_.size(); }
  std::size_t block_capacity() const override { return capacity_; }
  std::size_t block_rows(std::size_t block) const override {
    return static_cast<std::size_t>(blocks_[block].num_rows);
  }
  const BlockZoneMap* zone_map(std::size_t block) const override {
    return &blocks_[block].zone;
  }
  const BBox& extent() const override { return extent_; }
  Result<BlockRef> ReadBlock(std::size_t block,
                             PointTable* scratch) const override;

  /// Zero-copy read: returns column pointers directly into the mapping
  /// (every block is 8-byte aligned by the format, so the f64/f32 runs
  /// reinterpret in place; `scratch` is ignored). Meters bytes_read
  /// exactly as ReadBlock does — the Fig. 13 metric counts block bytes
  /// accessed, and a zero-copy scan accesses the same pages a copying
  /// scan would.
  Result<BlockView> ViewBlock(std::size_t block,
                              PointTable* scratch) const override;

  std::uint64_t bytes_read() const override {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  bool disk_resident() const override { return true; }

 private:
  struct BlockMeta {
    std::uint64_t num_rows = 0;
    std::uint64_t data_offset = 0;  ///< absolute, 8-byte aligned
    BlockZoneMap zone;
  };

  BlockFileReader() = default;

  std::string path_;
  const unsigned char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::vector<std::string> names_;
  std::vector<BlockMeta> blocks_;
  std::uint64_t num_rows_ = 0;
  std::size_t capacity_ = 0;
  BBox extent_;
  /// Atomic: the pipeline's reader thread and the query thread both pass
  /// through here under concurrent queries.
  mutable std::atomic<std::uint64_t> bytes_read_{0};
};

/// Opens `path` as a block source, sniffing the format version: v2 files
/// map through BlockFileReader; v1 flat files load fully into memory and
/// are served through an owning TableBlockSource with zone maps built at
/// capacity `v1_block_capacity` — the interop path that keeps every
/// existing .rjc file readable by the block-based scan stack.
Result<std::unique_ptr<PointBlockSource>> OpenPointBlockSource(
    const std::string& path, std::size_t v1_block_capacity = 1u << 16);

}  // namespace rj::data
