/// \file counters.h
/// \brief Work-proportional performance counters for the simulated device.
///
/// On a machine whose core count differs from the paper's testbed, wall
/// clock alone cannot reproduce speedup *ratios*. These counters meter the
/// algorithmic work each join variant performs (fragments shaded, PIP tests,
/// bytes transferred host→device, atomic accumulations), which is machine
/// independent and determines the paper's performance ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rj::gpu {

/// Aggregated counters for one query execution. Thread-safe increments.
class Counters {
 public:
  void Reset();

  void AddFragments(std::uint64_t n) { fragments_ += n; }
  void AddVerticesProcessed(std::uint64_t n) { vertices_ += n; }
  void AddBytesTransferred(std::uint64_t n) { bytes_transferred_ += n; }
  void AddAtomicAdds(std::uint64_t n) { atomic_adds_ += n; }
  void AddPipTests(std::uint64_t n) { pip_tests_ += n; }
  void AddRenderPasses(std::uint64_t n) { render_passes_ += n; }
  void AddBatches(std::uint64_t n) { batches_ += n; }

  std::uint64_t fragments() const { return fragments_; }
  std::uint64_t vertices() const { return vertices_; }
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  std::uint64_t atomic_adds() const { return atomic_adds_; }
  std::uint64_t pip_tests() const { return pip_tests_; }
  std::uint64_t render_passes() const { return render_passes_; }
  std::uint64_t batches() const { return batches_; }

  std::string ToString() const;

 private:
  std::atomic<std::uint64_t> fragments_{0};
  std::atomic<std::uint64_t> vertices_{0};
  std::atomic<std::uint64_t> bytes_transferred_{0};
  std::atomic<std::uint64_t> atomic_adds_{0};
  std::atomic<std::uint64_t> pip_tests_{0};
  std::atomic<std::uint64_t> render_passes_{0};
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace rj::gpu
