/// \file counters.h
/// \brief Work-proportional performance counters for the simulated device.
///
/// On a machine whose core count differs from the paper's testbed, wall
/// clock alone cannot reproduce speedup *ratios*. These counters meter the
/// algorithmic work each join variant performs (fragments shaded, PIP tests,
/// bytes transferred host→device, atomic accumulations), which is machine
/// independent and determines the paper's performance ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rj::gpu {

/// Plain-value copy of a Counters instance at one point in time. Copyable
/// (unlike Counters, whose atomics pin it in place), so QueryService can
/// attach per-query accounting snapshots to futures-based results.
struct CountersSnapshot {
  std::uint64_t fragments = 0;
  std::uint64_t vertices = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t atomic_adds = 0;
  std::uint64_t pip_tests = 0;
  std::uint64_t render_passes = 0;
  std::uint64_t batches = 0;
  std::uint64_t blocks_scanned = 0;  ///< zone-map decisions: block read
  std::uint64_t blocks_pruned = 0;   ///< zone-map decisions: block skipped
  std::uint64_t shards_routed = 0;   ///< routing decisions: shard executed
  std::uint64_t shards_skipped = 0;  ///< routing decisions: shard skipped

  /// Per-field difference (work performed between two snapshots).
  CountersSnapshot DeltaSince(const CountersSnapshot& earlier) const {
    CountersSnapshot d;
    d.fragments = fragments - earlier.fragments;
    d.vertices = vertices - earlier.vertices;
    d.bytes_transferred = bytes_transferred - earlier.bytes_transferred;
    d.atomic_adds = atomic_adds - earlier.atomic_adds;
    d.pip_tests = pip_tests - earlier.pip_tests;
    d.render_passes = render_passes - earlier.render_passes;
    d.batches = batches - earlier.batches;
    d.blocks_scanned = blocks_scanned - earlier.blocks_scanned;
    d.blocks_pruned = blocks_pruned - earlier.blocks_pruned;
    d.shards_routed = shards_routed - earlier.shards_routed;
    d.shards_skipped = shards_skipped - earlier.shards_skipped;
    return d;
  }

  /// Per-field sum (the dual of DeltaSince; pool totals and sharded
  /// gather both merge snapshots with this, so the field list lives in
  /// exactly one place besides DeltaSince).
  CountersSnapshot Plus(const CountersSnapshot& other) const {
    CountersSnapshot s;
    s.fragments = fragments + other.fragments;
    s.vertices = vertices + other.vertices;
    s.bytes_transferred = bytes_transferred + other.bytes_transferred;
    s.atomic_adds = atomic_adds + other.atomic_adds;
    s.pip_tests = pip_tests + other.pip_tests;
    s.render_passes = render_passes + other.render_passes;
    s.batches = batches + other.batches;
    s.blocks_scanned = blocks_scanned + other.blocks_scanned;
    s.blocks_pruned = blocks_pruned + other.blocks_pruned;
    s.shards_routed = shards_routed + other.shards_routed;
    s.shards_skipped = shards_skipped + other.shards_skipped;
    return s;
  }
};

/// Aggregated counters for one query execution. Thread-safe increments.
class Counters {
 public:
  void Reset();

  /// Point-in-time copy of every counter (thread-safe reads).
  CountersSnapshot Snapshot() const {
    CountersSnapshot s;
    s.fragments = fragments();
    s.vertices = vertices();
    s.bytes_transferred = bytes_transferred();
    s.atomic_adds = atomic_adds();
    s.pip_tests = pip_tests();
    s.render_passes = render_passes();
    s.batches = batches();
    s.blocks_scanned = blocks_scanned();
    s.blocks_pruned = blocks_pruned();
    s.shards_routed = shards_routed();
    s.shards_skipped = shards_skipped();
    return s;
  }

  void AddFragments(std::uint64_t n) { fragments_ += n; }
  void AddVerticesProcessed(std::uint64_t n) { vertices_ += n; }
  void AddBytesTransferred(std::uint64_t n) { bytes_transferred_ += n; }
  void AddAtomicAdds(std::uint64_t n) { atomic_adds_ += n; }
  void AddPipTests(std::uint64_t n) { pip_tests_ += n; }
  void AddRenderPasses(std::uint64_t n) { render_passes_ += n; }
  void AddBatches(std::uint64_t n) { batches_ += n; }
  void AddBlocksScanned(std::uint64_t n) { blocks_scanned_ += n; }
  void AddBlocksPruned(std::uint64_t n) { blocks_pruned_ += n; }
  void AddShardsRouted(std::uint64_t n) { shards_routed_ += n; }
  void AddShardsSkipped(std::uint64_t n) { shards_skipped_ += n; }

  std::uint64_t fragments() const { return fragments_; }
  std::uint64_t vertices() const { return vertices_; }
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  std::uint64_t atomic_adds() const { return atomic_adds_; }
  std::uint64_t pip_tests() const { return pip_tests_; }
  std::uint64_t render_passes() const { return render_passes_; }
  std::uint64_t batches() const { return batches_; }
  std::uint64_t blocks_scanned() const { return blocks_scanned_; }
  std::uint64_t blocks_pruned() const { return blocks_pruned_; }
  std::uint64_t shards_routed() const { return shards_routed_; }
  std::uint64_t shards_skipped() const { return shards_skipped_; }

  std::string ToString() const;

 private:
  std::atomic<std::uint64_t> fragments_{0};
  std::atomic<std::uint64_t> vertices_{0};
  std::atomic<std::uint64_t> bytes_transferred_{0};
  std::atomic<std::uint64_t> atomic_adds_{0};
  std::atomic<std::uint64_t> pip_tests_{0};
  std::atomic<std::uint64_t> render_passes_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> blocks_scanned_{0};
  std::atomic<std::uint64_t> blocks_pruned_{0};
  std::atomic<std::uint64_t> shards_routed_{0};
  std::atomic<std::uint64_t> shards_skipped_{0};
};

}  // namespace rj::gpu
