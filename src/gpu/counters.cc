#include "gpu/counters.h"

#include <cstdio>

namespace rj::gpu {

void Counters::Reset() {
  fragments_ = 0;
  vertices_ = 0;
  bytes_transferred_ = 0;
  atomic_adds_ = 0;
  pip_tests_ = 0;
  render_passes_ = 0;
  batches_ = 0;
  blocks_scanned_ = 0;
  blocks_pruned_ = 0;
  shards_routed_ = 0;
  shards_skipped_ = 0;
}

std::string Counters::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "fragments=%llu vertices=%llu bytes=%llu atomics=%llu "
                "pip=%llu passes=%llu batches=%llu blocks=%llu pruned=%llu "
                "shards=%llu shards_skipped=%llu",
                static_cast<unsigned long long>(fragments()),
                static_cast<unsigned long long>(vertices()),
                static_cast<unsigned long long>(bytes_transferred()),
                static_cast<unsigned long long>(atomic_adds()),
                static_cast<unsigned long long>(pip_tests()),
                static_cast<unsigned long long>(render_passes()),
                static_cast<unsigned long long>(batches()),
                static_cast<unsigned long long>(blocks_scanned()),
                static_cast<unsigned long long>(blocks_pruned()),
                static_cast<unsigned long long>(shards_routed()),
                static_cast<unsigned long long>(shards_skipped()));
  return buf;
}

}  // namespace rj::gpu
