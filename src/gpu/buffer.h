/// \file buffer.h
/// \brief Device buffer objects (VBO / SSBO analogues).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rj::gpu {

/// Kind of buffer, mirroring the OpenGL objects the paper's implementation
/// uses (§6.1): vertex buffers for point/triangle streams, shader storage
/// buffers for the result array A, textures for bound FBOs.
enum class BufferKind { kVertexBuffer, kShaderStorage, kTexture };

/// A block of simulated device memory. Contents live in host RAM, but every
/// upload is metered by the owning Device so benches can report the
/// host→device transfer component (Fig. 9/11/13 breakdowns).
class Buffer {
 public:
  Buffer(BufferKind kind, std::size_t bytes) : kind_(kind), data_(bytes) {}

  BufferKind kind() const { return kind_; }
  std::size_t size() const { return data_.size(); }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }

  template <typename T>
  T* As() {
    return reinterpret_cast<T*>(data_.data());
  }
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(data_.data());
  }

 private:
  BufferKind kind_;
  std::vector<std::uint8_t> data_;
};

}  // namespace rj::gpu
