/// \file device_pool.h
/// \brief A pool of simulated gpu::Device instances for sharded execution.
///
/// The paper runs on one GTX 1060; the ROADMAP north star is a service
/// whose datasets exceed any single device's memory and raster throughput.
/// DevicePool owns N independent Device instances — each with its own
/// memory budget, counters, and worker pool — so a ShardedTable can place
/// one shard per device and the Executor can scatter a query across them
/// (docs/SERVICE.md "Device pool and sharding").
///
/// The pool itself is mostly passive: placement is the Executor's job
/// (shard s runs on device s mod size()) and admission is QueryService's
/// (per-device MemoryReservation grants via TryReservePool). What the pool
/// provides is uniform construction, utilization snapshots for the
/// scheduler/stats plumbing, and the all-or-nothing PoolReservation that
/// keeps multi-device grants deadlock-free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "gpu/counters.h"
#include "gpu/device.h"

namespace rj::gpu {

/// Configuration of an owned, homogeneous device pool.
struct DevicePoolOptions {
  /// Number of devices (≥ 1).
  std::size_t num_devices = 1;
  /// Per-device configuration, applied to every device. A homogeneous pool
  /// keeps canvas planning aligned across shards: PlanCanvas depends on
  /// max_fbo_dim, and sharded determinism requires every shard to rasterize
  /// on the same pixel grid.
  DeviceOptions device;
};

/// Point-in-time utilization of one pool device (ServiceStats plumbing).
/// Snapshots are pure reads: `peak_*` are monotone lifetime high-water
/// marks (Device contract) — an intervening snapshot never resets them, so
/// for two snapshots taken in order, `later.peak_* >= earlier.peak_*`
/// always holds (regression-tested in tests/gpu/device_pool_test.cc).
struct DeviceUtilization {
  std::size_t budget_bytes = 0;
  std::size_t allocated_bytes = 0;
  std::size_t reserved_bytes = 0;
  std::size_t peak_allocated_bytes = 0;
  std::size_t peak_reserved_bytes = 0;
  CountersSnapshot counters;
};

/// A fixed set of gpu::Device instances. Devices are constructed once and
/// never added/removed, so device(i) pointers are stable for the pool's
/// lifetime and may be used without synchronization (each Device is
/// internally thread-safe).
class DevicePool {
 public:
  /// Owned pool: constructs `options.num_devices` identical devices.
  explicit DevicePool(DevicePoolOptions options);

  /// Owned heterogeneous pool (tests; capacity-skewed deployments).
  explicit DevicePool(const std::vector<DeviceOptions>& per_device);

  /// Non-owning wrapper around externally-owned devices (QueryService's
  /// single-device constructor wraps its legacy Device* this way). The
  /// devices must outlive the pool.
  explicit DevicePool(std::vector<Device*> external);

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  std::size_t size() const { return devices_.size(); }
  Device* device(std::size_t i) const { return devices_[i]; }
  /// Device 0: runs unsharded queries and hosts gather-phase work.
  Device* primary() const { return devices_.front(); }

  /// True when every device shares one max_fbo_dim — the precondition for
  /// cross-shard canvas alignment (sharded Executor validates this).
  bool UniformFboLimit() const;

  /// Per-device utilization snapshot, in device order.
  std::vector<DeviceUtilization> Utilization() const;

  /// Counters summed across every device (pool-wide work).
  CountersSnapshot TotalCounters() const;

 private:
  std::vector<std::unique_ptr<Device>> owned_;
  std::vector<Device*> devices_;
};

/// RAII bundle of per-device admission grants for one query. Obtained from
/// TryReservePool; releases every grant on destruction. Like
/// MemoryReservation, this is an accounting ticket: Σ grants on a device ≤
/// its budget, so a pool-admitted query set can never oversubscribe any
/// device.
class PoolReservation {
 public:
  PoolReservation() = default;
  PoolReservation(PoolReservation&&) = default;
  PoolReservation& operator=(PoolReservation&&) = default;
  PoolReservation(const PoolReservation&) = delete;
  PoolReservation& operator=(const PoolReservation&) = delete;

  /// True when at least one per-device grant is held.
  [[nodiscard]] bool active() const;
  /// Total bytes held across every device.
  [[nodiscard]] std::size_t total_bytes() const;
  /// Bytes held on device i (0 when the query places nothing there).
  [[nodiscard]] std::size_t bytes_on(std::size_t i) const {
    return i < grants_.size() ? grants_[i].bytes() : 0;
  }

  /// Releases every per-device grant (idempotent). Takes each device's
  /// internal (leaf) mutex in turn — never call while holding any lock
  /// above Device in the hierarchy except QueryService::mutex_, whose
  /// mutex_ → device-mutex order is the documented one.
  void Release();

 private:
  friend Result<PoolReservation> TryReservePool(
      DevicePool* pool, const std::vector<std::size_t>& bytes_per_device);
  /// Single-owner move-only state: no mutex. A PoolReservation is handed
  /// between threads only with external happens-before (the service queue),
  /// never shared; the thread-safety lives inside each MemoryReservation's
  /// Device.
  std::vector<MemoryReservation> grants_;
};

/// All-or-nothing reservation across the pool: grants bytes_per_device[i]
/// on device i (entries of 0 are skipped). On any device's CapacityError
/// the grants already acquired are released before returning, so a query
/// never holds a partial multi-device grant — the hold-and-wait ingredient
/// of admission deadlock between concurrent queries. `bytes_per_device`
/// must not be longer than the pool.
[[nodiscard]] Result<PoolReservation> TryReservePool(
    DevicePool* pool, const std::vector<std::size_t>& bytes_per_device);

}  // namespace rj::gpu
