#include "gpu/device_pool.h"

#include <algorithm>
#include <utility>

namespace rj::gpu {

DevicePool::DevicePool(DevicePoolOptions options) {
  const std::size_t n = std::max<std::size_t>(1, options.num_devices);
  owned_.reserve(n);
  devices_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    owned_.push_back(std::make_unique<Device>(options.device));
    devices_.push_back(owned_.back().get());
  }
}

DevicePool::DevicePool(const std::vector<DeviceOptions>& per_device) {
  owned_.reserve(std::max<std::size_t>(1, per_device.size()));
  devices_.reserve(owned_.capacity());
  if (per_device.empty()) {
    owned_.push_back(std::make_unique<Device>());
    devices_.push_back(owned_.back().get());
    return;
  }
  for (const DeviceOptions& options : per_device) {
    owned_.push_back(std::make_unique<Device>(options));
    devices_.push_back(owned_.back().get());
  }
}

DevicePool::DevicePool(std::vector<Device*> external)
    : devices_(std::move(external)) {
  if (devices_.empty()) {
    // Uphold the never-empty invariant the owned constructors guarantee
    // (primary() must always be valid): fall back to one owned device.
    owned_.push_back(std::make_unique<Device>());
    devices_.push_back(owned_.back().get());
  }
}

bool DevicePool::UniformFboLimit() const {
  for (const Device* d : devices_) {
    if (d->options().max_fbo_dim != primary()->options().max_fbo_dim) {
      return false;
    }
  }
  return true;
}

std::vector<DeviceUtilization> DevicePool::Utilization() const {
  std::vector<DeviceUtilization> out;
  out.reserve(devices_.size());
  for (const Device* d : devices_) {
    DeviceUtilization u;
    u.budget_bytes = d->memory_budget_bytes();
    u.allocated_bytes = d->bytes_allocated();
    u.reserved_bytes = d->bytes_reserved();
    u.peak_allocated_bytes = d->peak_bytes_allocated();
    u.peak_reserved_bytes = d->peak_bytes_reserved();
    u.counters = d->counters().Snapshot();
    out.push_back(u);
  }
  return out;
}

CountersSnapshot DevicePool::TotalCounters() const {
  CountersSnapshot total;
  for (const Device* d : devices_) {
    total = total.Plus(d->counters().Snapshot());
  }
  return total;
}

bool PoolReservation::active() const {
  for (const MemoryReservation& g : grants_) {
    if (g.active()) return true;
  }
  return false;
}

std::size_t PoolReservation::total_bytes() const {
  std::size_t total = 0;
  for (const MemoryReservation& g : grants_) total += g.bytes();
  return total;
}

void PoolReservation::Release() {
  for (MemoryReservation& g : grants_) g.Release();
  grants_.clear();
}

Result<PoolReservation> TryReservePool(
    DevicePool* pool, const std::vector<std::size_t>& bytes_per_device) {
  if (bytes_per_device.size() > pool->size()) {
    return Status::InvalidArgument(
        "reservation names more devices than the pool holds");
  }
  PoolReservation out;
  out.grants_.resize(pool->size());
  for (std::size_t i = 0; i < bytes_per_device.size(); ++i) {
    if (bytes_per_device[i] == 0) continue;
    Result<MemoryReservation> grant =
        pool->device(i)->TryReserve(bytes_per_device[i]);
    if (!grant.ok()) {
      // All-or-nothing: drop what we already hold before reporting.
      out.Release();
      return grant.status();
    }
    out.grants_[i] = std::move(grant).MoveValueUnsafe();
  }
  return out;
}

}  // namespace rj::gpu
