/// \file device.h
/// \brief Simulated graphics device: bounded memory, metered transfers,
/// a worker pool standing in for SIMT parallelism.
///
/// DESIGN.md §2 documents this substitution. The device enforces the two
/// GPU constraints the paper's algorithms are designed around:
///  1. bounded device memory → out-of-core point batching (§5), and
///  2. a maximum FBO resolution → multi-canvas tiling for small ε (Fig. 5).
/// Host→device uploads go through CopyToDevice(), which both meters bytes
/// (gpu::Counters) and spends real wall time proportional to a configurable
/// bandwidth, so transfer/compute breakdowns have the paper's shape.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "gpu/buffer.h"
#include "gpu/counters.h"

namespace rj::gpu {

/// Configuration of the simulated device.
struct DeviceOptions {
  /// Device memory budget in bytes (paper limits the GTX 1060 to 3 GB).
  /// Benches shrink this to force out-of-core batching at reduced scale.
  std::size_t memory_budget_bytes = 512ull << 20;

  /// Maximum FBO side length in pixels (paper: 8192).
  std::int32_t max_fbo_dim = 8192;

  /// Simulated host→device bandwidth in bytes/second. Transfers busy-wait
  /// a proportional amount so phase breakdowns are realistic. 0 disables
  /// the wait (bytes are still metered).
  double transfer_bandwidth_bytes_per_sec = 0.0;

  /// Worker threads for shader-stage execution (0 = hardware concurrency).
  std::size_t num_workers = 0;
};

/// A simulated graphics device instance.
class Device {
 public:
  explicit Device(DeviceOptions options = {});

  const DeviceOptions& options() const { return options_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  ThreadPool& pool() { return *pool_; }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_free() const {
    return options_.memory_budget_bytes - bytes_allocated_;
  }

  /// Allocates a device buffer; CapacityError when the budget is exceeded
  /// (the trigger for out-of-core batching in the executor).
  Result<std::shared_ptr<Buffer>> Allocate(BufferKind kind, std::size_t bytes);

  /// Releases a buffer's reservation. The buffer must have come from this
  /// device; double-free is a programming error (assert).
  void Free(const std::shared_ptr<Buffer>& buffer);

  /// Copies host memory into a device buffer at `offset`, metering bytes
  /// and (optionally) spending bandwidth-proportional wall time.
  Status CopyToDevice(Buffer* dst, std::size_t offset, const void* src,
                      std::size_t bytes);

  /// Copies device memory back to the host (result readback; also metered).
  Status CopyToHost(const Buffer* src, std::size_t offset, void* dst,
                    std::size_t bytes);

  /// Largest number of points (each `point_bytes` wide) that fits in the
  /// remaining budget — the executor's batch-size planner.
  std::size_t MaxResidentElements(std::size_t point_bytes) const;

 private:
  void SimulateTransferTime(std::size_t bytes);

  DeviceOptions options_;
  Counters counters_;
  std::unique_ptr<ThreadPool> pool_;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace rj::gpu
