/// \file device.h
/// \brief Simulated graphics device: bounded memory, metered transfers,
/// a worker pool standing in for SIMT parallelism.
///
/// DESIGN.md §2 documents this substitution. The device enforces the two
/// GPU constraints the paper's algorithms are designed around:
///  1. bounded device memory → out-of-core point batching (§5), and
///  2. a maximum FBO resolution → multi-canvas tiling for small ε (Fig. 5).
/// Host→device uploads go through CopyToDevice(), which both meters bytes
/// (gpu::Counters) and spends real wall time proportional to a configurable
/// bandwidth, so transfer/compute breakdowns have the paper's shape.
///
/// Thread-safety contract (docs/SERVICE.md): a Device may be shared by
/// concurrent queries. Allocation, freeing, reservation, and budget
/// queries are serialized on an internal mutex; transfers touch only the
/// caller-owned buffer plus atomic counters, so they run without a lock.
/// Admission layers (rj::QueryService) carve the budget into per-query
/// grants with TryReserve() before dispatching, so concurrent queries'
/// allocations can never oversubscribe `memory_budget_bytes`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "gpu/buffer.h"
#include "gpu/counters.h"

namespace rj::gpu {

/// Configuration of the simulated device.
struct DeviceOptions {
  /// Device memory budget in bytes (paper limits the GTX 1060 to 3 GB).
  /// Benches shrink this to force out-of-core batching at reduced scale.
  std::size_t memory_budget_bytes = 512ull << 20;

  /// Maximum FBO side length in pixels (paper: 8192).
  std::int32_t max_fbo_dim = 8192;

  /// Simulated host→device bandwidth in bytes/second. Transfers wait a
  /// proportional amount (hybrid sleep+spin, so a prefetch thread does not
  /// pin a core the draw workers need) so phase breakdowns are realistic.
  /// 0 disables the wait (bytes are still metered).
  double transfer_bandwidth_bytes_per_sec = 0.0;

  /// Worker threads for shader-stage execution (0 = hardware concurrency).
  std::size_t num_workers = 0;
};

class Device;

/// RAII admission grant against a Device's memory budget. Obtained from
/// Device::TryReserve; releases its bytes on destruction (or Release()).
/// A reservation is an accounting ticket for an admission controller, not
/// backing store: the holder promises its concurrent Allocate() peak stays
/// within the granted bytes, and because every admitted query holds such a
/// ticket and Σ grants ≤ budget, the device can never oversubscribe.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryReservation&& other) noexcept;
  MemoryReservation& operator=(MemoryReservation&& other) noexcept;
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation();

  /// True when this token holds bytes against a device.
  [[nodiscard]] bool active() const { return device_ != nullptr; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  /// Returns the granted bytes to the device budget (idempotent).
  void Release();

 private:
  friend class Device;
  MemoryReservation(Device* device, std::size_t bytes)
      : device_(device), bytes_(bytes) {}

  Device* device_ = nullptr;
  std::size_t bytes_ = 0;
};

/// A simulated graphics device instance.
class Device {
 public:
  explicit Device(DeviceOptions options = {});

  /// Construction-time configuration. `options().memory_budget_bytes` is
  /// the initial budget; the live (possibly resized) value is
  /// memory_budget_bytes().
  const DeviceOptions& options() const { return options_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  ThreadPool& pool() { return *pool_; }

  /// Current budget (thread-safe; see set_memory_budget_bytes).
  std::size_t memory_budget_bytes() const RJ_EXCLUDES(mutex_);

  std::size_t bytes_allocated() const RJ_EXCLUDES(mutex_);
  /// Remaining budget, clamped at zero: shrinking the budget below the
  /// allocated bytes (tests do this to force the out-of-core regime) must
  /// not wrap around to a huge value.
  std::size_t bytes_free() const RJ_EXCLUDES(mutex_);

  /// Bytes currently promised to admitted-but-possibly-running queries.
  std::size_t bytes_reserved() const RJ_EXCLUDES(mutex_);

  /// High-water marks since construction (admission-test observability).
  /// Monotone for the device's lifetime: reading them (here or via
  /// DevicePool::Utilization snapshots) never resets them, and no code
  /// path lowers them — two snapshots taken in order always satisfy
  /// `later.peak_* >= earlier.peak_*`.
  std::size_t peak_bytes_allocated() const RJ_EXCLUDES(mutex_);
  std::size_t peak_bytes_reserved() const RJ_EXCLUDES(mutex_);

  /// Shrinks/grows the budget at runtime (tests; capacity reconfiguration).
  /// Existing allocations and reservations are not revoked; a budget below
  /// the allocated bytes simply reports zero free until frees catch up.
  void set_memory_budget_bytes(std::size_t bytes) RJ_EXCLUDES(mutex_);

  /// Allocates a device buffer; CapacityError when the budget is exceeded
  /// (the trigger for out-of-core batching in the executor). Thread-safe.
  Result<std::shared_ptr<Buffer>> Allocate(BufferKind kind, std::size_t bytes)
      RJ_EXCLUDES(mutex_);

  /// Releases a buffer's reservation. The buffer must have come from this
  /// device; double-free is a programming error (assert). Thread-safe.
  void Free(const std::shared_ptr<Buffer>& buffer) RJ_EXCLUDES(mutex_);

  /// Grants `bytes` of the budget to an admission controller, or
  /// CapacityError when the unreserved budget is smaller (the caller
  /// queues and retries after another grant releases — it must not treat
  /// this as query failure). Thread-safe. Discarding the Result would
  /// either leak the grant until the temporary dies or silently drop a
  /// CapacityError, so it is a compile error.
  [[nodiscard]] Result<MemoryReservation> TryReserve(std::size_t bytes)
      RJ_EXCLUDES(mutex_);

  /// Copies host memory into a device buffer at `offset`, metering bytes
  /// and (optionally) spending bandwidth-proportional wall time.
  Status CopyToDevice(Buffer* dst, std::size_t offset, const void* src,
                      std::size_t bytes);

  /// Copies device memory back to the host (result readback; also metered).
  Status CopyToHost(const Buffer* src, std::size_t offset, void* dst,
                    std::size_t bytes);

  /// Largest number of points (each `point_bytes` wide) that fits in the
  /// remaining budget — the executor's batch-size planner.
  std::size_t MaxResidentElements(std::size_t point_bytes) const
      RJ_EXCLUDES(mutex_);

 private:
  friend class MemoryReservation;
  void ReleaseReservation(std::size_t bytes) RJ_EXCLUDES(mutex_);

  void SimulateTransferTime(std::size_t bytes);

  DeviceOptions options_;
  Counters counters_;
  std::unique_ptr<ThreadPool> pool_;

  /// Guards the budget accounting below. `options_` itself stays immutable
  /// after construction so options() can be read without synchronization.
  /// Leaf lock in the repo-wide hierarchy (docs/CONCURRENCY.md): nothing
  /// else is ever acquired while it is held.
  mutable Mutex mutex_;
  std::size_t memory_budget_bytes_ RJ_GUARDED_BY(mutex_) = 0;
  std::size_t bytes_allocated_ RJ_GUARDED_BY(mutex_) = 0;
  std::size_t bytes_reserved_ RJ_GUARDED_BY(mutex_) = 0;
  std::size_t peak_bytes_allocated_ RJ_GUARDED_BY(mutex_) = 0;
  std::size_t peak_bytes_reserved_ RJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace rj::gpu
