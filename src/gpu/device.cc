#include "gpu/device.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace rj::gpu {

Device::Device(DeviceOptions options) : options_(options) {
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

Result<std::shared_ptr<Buffer>> Device::Allocate(BufferKind kind,
                                                 std::size_t bytes) {
  if (bytes_allocated_ + bytes > options_.memory_budget_bytes) {
    return Status::CapacityError(
        "device memory budget exceeded: requested " + std::to_string(bytes) +
        " bytes with " + std::to_string(bytes_free()) + " free");
  }
  bytes_allocated_ += bytes;
  return std::make_shared<Buffer>(kind, bytes);
}

void Device::Free(const std::shared_ptr<Buffer>& buffer) {
  assert(buffer != nullptr);
  assert(bytes_allocated_ >= buffer->size());
  bytes_allocated_ -= buffer->size();
}

Status Device::CopyToDevice(Buffer* dst, std::size_t offset, const void* src,
                            std::size_t bytes) {
  if (offset + bytes > dst->size()) {
    return Status::OutOfRange("CopyToDevice overflows destination buffer");
  }
  std::memcpy(dst->data() + offset, src, bytes);
  counters_.AddBytesTransferred(bytes);
  SimulateTransferTime(bytes);
  return Status::OK();
}

Status Device::CopyToHost(const Buffer* src, std::size_t offset, void* dst,
                          std::size_t bytes) {
  if (offset + bytes > src->size()) {
    return Status::OutOfRange("CopyToHost overflows source buffer");
  }
  std::memcpy(dst, src->data() + offset, bytes);
  counters_.AddBytesTransferred(bytes);
  SimulateTransferTime(bytes);
  return Status::OK();
}

std::size_t Device::MaxResidentElements(std::size_t point_bytes) const {
  if (point_bytes == 0) return 0;
  return bytes_free() / point_bytes;
}

void Device::SimulateTransferTime(std::size_t bytes) {
  const double bw = options_.transfer_bandwidth_bytes_per_sec;
  if (bw <= 0.0) return;
  const double seconds = static_cast<double>(bytes) / bw;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(seconds));
  // Busy-wait: sleep granularity is too coarse for per-batch transfers.
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace rj::gpu
