#include "gpu/device.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace rj::gpu {

MemoryReservation::MemoryReservation(MemoryReservation&& other) noexcept
    : device_(other.device_), bytes_(other.bytes_) {
  other.device_ = nullptr;
  other.bytes_ = 0;
}

MemoryReservation& MemoryReservation::operator=(
    MemoryReservation&& other) noexcept {
  if (this != &other) {
    Release();
    device_ = other.device_;
    bytes_ = other.bytes_;
    other.device_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

MemoryReservation::~MemoryReservation() { Release(); }

void MemoryReservation::Release() {
  if (device_ != nullptr) {
    device_->ReleaseReservation(bytes_);
    device_ = nullptr;
    bytes_ = 0;
  }
}

Device::Device(DeviceOptions options)
    : options_(options), memory_budget_bytes_(options.memory_budget_bytes) {
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

std::size_t Device::memory_budget_bytes() const {
  MutexLock lock(mutex_);
  return memory_budget_bytes_;
}

std::size_t Device::bytes_allocated() const {
  MutexLock lock(mutex_);
  return bytes_allocated_;
}

namespace {
// Clamp: the budget may have been shrunk below the used bytes, and an
// unsigned wrap here would report a near-infinite remainder (the executor's
// batch planner consumes it via MaxResidentElements).
std::size_t ClampedRemaining(std::size_t used, std::size_t budget) {
  return used >= budget ? 0 : budget - used;
}
}  // namespace

std::size_t Device::bytes_free() const {
  MutexLock lock(mutex_);
  return ClampedRemaining(bytes_allocated_, memory_budget_bytes_);
}

std::size_t Device::bytes_reserved() const {
  MutexLock lock(mutex_);
  return bytes_reserved_;
}

std::size_t Device::peak_bytes_allocated() const {
  MutexLock lock(mutex_);
  return peak_bytes_allocated_;
}

std::size_t Device::peak_bytes_reserved() const {
  MutexLock lock(mutex_);
  return peak_bytes_reserved_;
}

void Device::set_memory_budget_bytes(std::size_t bytes) {
  MutexLock lock(mutex_);
  memory_budget_bytes_ = bytes;
}

Result<std::shared_ptr<Buffer>> Device::Allocate(BufferKind kind,
                                                 std::size_t bytes) {
  {
    MutexLock lock(mutex_);
    if (bytes_allocated_ + bytes > memory_budget_bytes_) {
      return Status::CapacityError(
          "device memory budget exceeded: requested " + std::to_string(bytes) +
          " bytes with " +
          std::to_string(
              ClampedRemaining(bytes_allocated_, memory_budget_bytes_)) +
          " free");
    }
    bytes_allocated_ += bytes;
    peak_bytes_allocated_ = std::max(peak_bytes_allocated_, bytes_allocated_);
  }
  // Buffer construction (a host-RAM allocation) happens outside the lock;
  // roll the accounting back if the host is out of memory, or the charged
  // bytes would leak from the budget with no buffer to Free. The peak is
  // deliberately NOT rolled back: peaks are monotone lifetime high-water
  // marks (DeviceUtilization contract) — the bytes really were charged for
  // a moment, and lowering the mark here could make a later Utilization()
  // snapshot report a smaller peak than an earlier one.
  try {
    return std::make_shared<Buffer>(kind, bytes);
  } catch (const std::bad_alloc&) {
    MutexLock lock(mutex_);
    bytes_allocated_ -= bytes;
    return Status::CapacityError("host allocation of " +
                                 std::to_string(bytes) +
                                 " bytes for device buffer failed");
  }
}

void Device::Free(const std::shared_ptr<Buffer>& buffer) {
  assert(buffer != nullptr);
  MutexLock lock(mutex_);
  assert(bytes_allocated_ >= buffer->size());
  bytes_allocated_ -= buffer->size();
}

Result<MemoryReservation> Device::TryReserve(std::size_t bytes) {
  MutexLock lock(mutex_);
  if (bytes_reserved_ + bytes > memory_budget_bytes_) {
    return Status::CapacityError(
        "device budget cannot grant " + std::to_string(bytes) + " bytes: " +
        std::to_string(
            ClampedRemaining(bytes_reserved_, memory_budget_bytes_)) +
        " unreserved");
  }
  bytes_reserved_ += bytes;
  peak_bytes_reserved_ = std::max(peak_bytes_reserved_, bytes_reserved_);
  return MemoryReservation(this, bytes);
}

void Device::ReleaseReservation(std::size_t bytes) {
  MutexLock lock(mutex_);
  assert(bytes_reserved_ >= bytes);
  bytes_reserved_ -= bytes;
}

Status Device::CopyToDevice(Buffer* dst, std::size_t offset, const void* src,
                            std::size_t bytes) {
  if (offset + bytes > dst->size()) {
    return Status::OutOfRange("CopyToDevice overflows destination buffer");
  }
  std::memcpy(dst->data() + offset, src, bytes);
  counters_.AddBytesTransferred(bytes);
  SimulateTransferTime(bytes);
  return Status::OK();
}

Status Device::CopyToHost(const Buffer* src, std::size_t offset, void* dst,
                          std::size_t bytes) {
  if (offset + bytes > src->size()) {
    return Status::OutOfRange("CopyToHost overflows source buffer");
  }
  std::memcpy(dst, src->data() + offset, bytes);
  counters_.AddBytesTransferred(bytes);
  SimulateTransferTime(bytes);
  return Status::OK();
}

std::size_t Device::MaxResidentElements(std::size_t point_bytes) const {
  if (point_bytes == 0) return 0;
  return bytes_free() / point_bytes;
}

void Device::SimulateTransferTime(std::size_t bytes) {
  const double bw = options_.transfer_bandwidth_bytes_per_sec;
  if (bw <= 0.0) return;
  const double seconds = static_cast<double>(bytes) / bw;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(seconds));
  // Hybrid wait: sleep through the bulk of the simulated transfer and spin
  // only the final slice. A pure busy-wait would pin a hardware thread for
  // the whole transfer — with uploads running on join::BatchPipeline's
  // prefetch thread that would starve the draw workers the overlap is
  // supposed to feed; a pure sleep is too coarse for small per-batch
  // transfers. The spin slice absorbs the scheduler's wakeup jitter.
  constexpr std::chrono::microseconds kSpinSlice(50);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    if (remaining > kSpinSlice) {
      std::this_thread::sleep_for(remaining - kSpinSlice);
    }
    // else: spin; the loop re-checks the clock until the deadline.
  }
}

}  // namespace rj::gpu
