#include "voronoi/voronoi.h"

#include <algorithm>
#include <set>

namespace rj {

namespace {

/// Clips a convex ring by the half-plane { p : dot(p - a, n) <= 0 } where
/// n = b - a rotated; concretely keeps points on the `keep` side of the
/// perpendicular bisector between `site` and `other`.
Ring ClipByBisector(const Ring& ring, const Point& site, const Point& other) {
  // Half-plane: points closer to `site` than to `other`.
  // dot(p, d) <= c where d = other - site, c = dot(midpoint, d).
  const Point d = other - site;
  const Point mid = (site + other) / 2.0;
  const double c = mid.Dot(d);

  Ring out;
  const std::size_t n = ring.size();
  if (n == 0) return out;
  out.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& cur = ring[i];
    const Point& prev = ring[(i + n - 1) % n];
    const double fc = cur.Dot(d) - c;
    const double fp = prev.Dot(d) - c;
    const bool cur_in = fc <= 0;
    const bool prev_in = fp <= 0;
    if (cur_in != prev_in) {
      const double t = fp / (fp - fc);
      out.push_back(prev + (cur - prev) * t);
    }
    if (cur_in) out.push_back(cur);
  }
  return out;
}

}  // namespace

Result<VoronoiDiagram> ComputeVoronoi(std::vector<Point> sites,
                                      const BBox& domain) {
  RJ_ASSIGN_OR_RETURN(DelaunayTriangulation dt, ComputeDelaunay(sites));

  const std::size_t n = dt.sites.size();
  std::vector<std::set<std::int32_t>> nbr_sets(n);
  for (const DelaunayTriangle& t : dt.triangles) {
    for (int e = 0; e < 3; ++e) {
      const std::int32_t u = t.v[e];
      const std::int32_t w = t.v[(e + 1) % 3];
      nbr_sets[u].insert(w);
      nbr_sets[w].insert(u);
    }
  }

  VoronoiDiagram out;
  out.sites = dt.sites;
  out.cells.resize(n);
  out.neighbors.resize(n);

  const Ring domain_ring = {{domain.min_x, domain.min_y},
                            {domain.max_x, domain.min_y},
                            {domain.max_x, domain.max_y},
                            {domain.min_x, domain.max_y}};

  for (std::size_t i = 0; i < n; ++i) {
    Ring cell = domain_ring;
    for (const std::int32_t j : nbr_sets[i]) {
      cell = ClipByBisector(cell, out.sites[i], out.sites[j]);
      if (cell.empty()) break;
    }
    out.cells[i] = std::move(cell);
    out.neighbors[i].assign(nbr_sets[i].begin(), nbr_sets[i].end());
  }

  // Sites whose Delaunay star was lost to degeneracy (collinear clusters)
  // may produce empty cells; keep them empty rather than failing — callers
  // (the region generator) skip empty cells.
  return out;
}

Ring ClipRingToConvex(const Ring& subject, const Ring& clip) {
  Ring output = subject;
  const std::size_t m = clip.size();
  // Ensure CCW clip ring so "inside" is to the left of each edge.
  Ring clip_ccw = clip;
  if (!IsCounterClockwise(clip_ccw)) ReverseRing(&clip_ccw);

  for (std::size_t e = 0; e < m && !output.empty(); ++e) {
    const Point& ca = clip_ccw[e];
    const Point& cb = clip_ccw[(e + 1) % m];
    Ring input = std::move(output);
    output.clear();
    const std::size_t n = input.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point& cur = input[i];
      const Point& prev = input[(i + n - 1) % n];
      const double fc = Orient2D(ca, cb, cur);
      const double fp = Orient2D(ca, cb, prev);
      const bool cur_in = fc >= 0;
      const bool prev_in = fp >= 0;
      if (cur_in != prev_in) {
        const double t = fp / (fp - fc);
        output.push_back(prev + (cur - prev) * t);
      }
      if (cur_in) output.push_back(cur);
    }
  }
  return output;
}

}  // namespace rj
