/// \file voronoi.h
/// \brief Clipped Voronoi diagrams derived from the Delaunay dual.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/bbox.h"
#include "geometry/polygon.h"
#include "voronoi/delaunay.h"

namespace rj {

/// A Voronoi diagram clipped to a rectangular domain.
struct VoronoiDiagram {
  std::vector<Point> sites;
  /// cells[i] is the (convex) Voronoi cell of sites[i] clipped to the domain.
  std::vector<Ring> cells;
  /// neighbors[i] lists site indices Delaunay-adjacent to i (candidates for
  /// the merge step of the §7.4 polygon generator).
  std::vector<std::vector<std::int32_t>> neighbors;
};

/// Computes the Voronoi diagram of `sites` clipped to `domain`.
///
/// Each cell is built as the intersection of the domain rectangle with the
/// bisector half-planes of the site's Delaunay neighbors — exactly the
/// Voronoi cell, in near-linear total time for well-distributed sites.
Result<VoronoiDiagram> ComputeVoronoi(std::vector<Point> sites,
                                      const BBox& domain);

/// Clips `subject` (any simple ring) against the convex ring `clip`
/// (generalized Sutherland–Hodgman). Used by restricted Voronoi.
Ring ClipRingToConvex(const Ring& subject, const Ring& clip);

}  // namespace rj
