#include "voronoi/restricted_voronoi.h"

namespace rj {

Result<std::vector<CoverageRegion>> ComputeRestrictedVoronoi(
    const std::vector<Point>& resources, const Polygon& region) {
  if (!region.holes().empty()) {
    return Status::NotImplemented(
        "restricted Voronoi over regions with holes");
  }
  RJ_ASSIGN_OR_RETURN(
      VoronoiDiagram vd,
      ComputeVoronoi(resources, region.bbox().Inflated(1.0)));

  std::vector<CoverageRegion> out;
  for (std::size_t i = 0; i < vd.cells.size(); ++i) {
    if (vd.cells[i].size() < 3) continue;
    // Voronoi cells are convex: clip the (possibly concave) region against
    // the cell.
    Ring piece = ClipRingToConvex(region.outer(), vd.cells[i]);
    if (piece.size() < 3 || SignedArea(piece) == 0.0) continue;
    CoverageRegion cr;
    cr.resource = static_cast<std::int32_t>(i);
    cr.region = Polygon(std::move(piece));
    cr.region.set_id(static_cast<std::int64_t>(i));
    RJ_RETURN_NOT_OK(cr.region.Normalize());
    out.push_back(std::move(cr));
  }
  return out;
}

}  // namespace rj
