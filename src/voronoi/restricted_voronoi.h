/// \file restricted_voronoi.h
/// \brief Voronoi cells restricted to a polygonal region.
///
/// The paper's second motivating application (interactive urban planning)
/// computes resource coverage by intersecting each resource's Voronoi cell
/// with the city region, then aggregating urban data over those pieces.
/// This module provides that substrate; examples/urban_planning.cc uses it.
#pragma once

#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "voronoi/voronoi.h"

namespace rj {

/// One resource's coverage region: its Voronoi cell ∩ the city region.
struct CoverageRegion {
  std::int32_t resource = -1;  ///< index into the input resource list
  Polygon region;              ///< id == resource index
};

/// Computes the restricted Voronoi diagram of `resources` over `region`
/// (a simple polygon without holes). Cells with empty intersection are
/// omitted.
Result<std::vector<CoverageRegion>> ComputeRestrictedVoronoi(
    const std::vector<Point>& resources, const Polygon& region);

}  // namespace rj
