/// \file delaunay.h
/// \brief Bowyer–Watson Delaunay triangulation of a point set.
///
/// Substrate for the Voronoi diagram used by (a) the §7.4 synthetic polygon
/// generator (Voronoi cells merged into concave regions) and (b) the
/// restricted-Voronoi urban-planning example from the paper's introduction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/bbox.h"
#include "geometry/point.h"

namespace rj {

/// A Delaunay triangle referencing input sites by index.
struct DelaunayTriangle {
  std::array<std::int32_t, 3> v;  ///< site indices, CCW
};

/// Result of a Delaunay run: triangles over the input sites.
struct DelaunayTriangulation {
  std::vector<Point> sites;
  std::vector<DelaunayTriangle> triangles;

  /// Circumcenter of triangle t (Voronoi vertex in the dual).
  Point Circumcenter(const DelaunayTriangle& t) const;
};

/// Computes the Delaunay triangulation with the incremental Bowyer–Watson
/// algorithm (O(n^2) worst case, ~O(n log n) on random input with the
/// locality-sorted insertion used here). Duplicate sites are rejected.
Result<DelaunayTriangulation> ComputeDelaunay(std::vector<Point> sites);

}  // namespace rj
