#include "voronoi/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/math_utils.h"

namespace rj {

namespace {

/// Returns > 0 if p lies strictly inside the circumcircle of CCW (a, b, c).
double InCircle(const Point& a, const Point& b, const Point& c,
                const Point& p) {
  const double ax = a.x - p.x, ay = a.y - p.y;
  const double bx = b.x - p.x, by = b.y - p.y;
  const double cx = c.x - p.x, cy = c.y - p.y;
  const double a2 = ax * ax + ay * ay;
  const double b2 = bx * bx + by * by;
  const double c2 = cx * cx + cy * cy;
  return ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) +
         a2 * (bx * cy - by * cx);
}

struct Tri {
  std::int32_t v[3];
  bool alive = true;
};

}  // namespace

Point DelaunayTriangulation::Circumcenter(const DelaunayTriangle& t) const {
  const Point& a = sites[t.v[0]];
  const Point& b = sites[t.v[1]];
  const Point& c = sites[t.v[2]];
  const double d = 2.0 * ((b - a).Cross(c - a));
  if (d == 0.0) return (a + b + c) / 3.0;  // degenerate; fall back
  const double a2 = a.NormSquared();
  const double b2 = b.NormSquared();
  const double c2 = c.NormSquared();
  const double ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  const double uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  return {ux, uy};
}

Result<DelaunayTriangulation> ComputeDelaunay(std::vector<Point> sites) {
  const std::size_t n = sites.size();
  if (n < 3) {
    return Status::InvalidArgument("Delaunay needs at least 3 sites");
  }
  {
    std::set<std::pair<double, double>> seen;
    for (const Point& p : sites) {
      if (!seen.insert({p.x, p.y}).second) {
        return Status::InvalidArgument("duplicate sites in Delaunay input");
      }
    }
  }

  // Super-triangle enclosing all sites with a wide margin.
  BBox box;
  for (const Point& p : sites) box.Expand(p);
  const double span = std::max(box.Width(), box.Height()) * 16.0 + 1.0;
  const Point mid = box.Center();
  const std::int32_t s0 = static_cast<std::int32_t>(n);
  const std::int32_t s1 = s0 + 1;
  const std::int32_t s2 = s0 + 2;
  std::vector<Point> pts = sites;
  pts.push_back({mid.x - 2.0 * span, mid.y - span});
  pts.push_back({mid.x + 2.0 * span, mid.y - span});
  pts.push_back({mid.x, mid.y + 2.0 * span});

  // Insertion order sorted by Morton-ish locality (simple x+y sweep keeps
  // cavity sizes small on random input).
  std::vector<std::int32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::int32_t>(i);
  std::sort(order.begin(), order.end(), [&pts](std::int32_t i, std::int32_t j) {
    return pts[i].x + pts[i].y < pts[j].x + pts[j].y;
  });

  std::vector<Tri> tris;
  tris.push_back({{s0, s1, s2}, true});

  std::vector<std::size_t> bad;
  // Boundary edges of the cavity: edge -> count (edges shared by two bad
  // triangles are interior and get removed).
  std::map<std::pair<std::int32_t, std::int32_t>, int> edge_count;

  for (const std::int32_t site : order) {
    const Point& p = pts[site];
    bad.clear();
    edge_count.clear();

    for (std::size_t t = 0; t < tris.size(); ++t) {
      if (!tris[t].alive) continue;
      const Point& a = pts[tris[t].v[0]];
      const Point& b = pts[tris[t].v[1]];
      const Point& c = pts[tris[t].v[2]];
      if (InCircle(a, b, c, p) > 0) {
        bad.push_back(t);
        for (int e = 0; e < 3; ++e) {
          std::int32_t u = tris[t].v[e];
          std::int32_t w = tris[t].v[(e + 1) % 3];
          auto key = std::minmax(u, w);
          edge_count[{key.first, key.second}]++;
        }
      }
    }
    if (bad.empty()) {
      // Numerically on an edge of everything; nudge is not acceptable for a
      // library, so treat as internal error — in practice unreachable with
      // the super-triangle margin used.
      return Status::Internal("Bowyer-Watson found no containing cavity");
    }

    // Collect directed boundary edges (appear exactly once), preserving
    // their orientation from the bad triangle so new triangles stay CCW.
    std::vector<std::pair<std::int32_t, std::int32_t>> boundary;
    for (std::size_t t_idx : bad) {
      const Tri& t = tris[t_idx];
      for (int e = 0; e < 3; ++e) {
        std::int32_t u = t.v[e];
        std::int32_t w = t.v[(e + 1) % 3];
        auto key = std::minmax(u, w);
        if (edge_count[{key.first, key.second}] == 1) {
          boundary.push_back({u, w});
        }
      }
      tris[t_idx].alive = false;
    }
    for (const auto& [u, w] : boundary) {
      tris.push_back({{u, w, site}, true});
    }
  }

  DelaunayTriangulation out;
  out.sites = std::move(sites);
  for (const Tri& t : tris) {
    if (!t.alive) continue;
    if (t.v[0] >= s0 || t.v[1] >= s0 || t.v[2] >= s0) continue;  // super-tri
    out.triangles.push_back({{t.v[0], t.v[1], t.v[2]}});
  }
  return out;
}

}  // namespace rj
