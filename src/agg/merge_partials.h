/// \file merge_partials.h
/// \brief Deterministic gather step for sharded execution: merges per-shard
/// partial aggregates, counters, result ranges, and phase timings.
///
/// Scatter-gather (Executor over a gpu::DevicePool) runs the join
/// independently on each shard's device and combines the partials here, in
/// ascending shard order, so the merged result is a pure function of the
/// shard outputs — independent of which shard finished first.
///
/// Exactness contract (the basis of the sharded-determinism guarantee,
/// docs/SERVICE.md):
///  * ResultArrays — COUNT merges exactly for any partition (integer sums
///    in double); MIN/MAX merge exactly always; SUM merges exactly whenever
///    the per-shard partial sums are exactly representable (e.g. integer
///    weights), the same regime DrawPolygons' per-worker merge documents.
///  * Counters — unsigned integer sums, always exact.
///  * ResultRanges — intervals add component-wise (each shard's interval is
///    anchored at its own partial aggregate, so lower/upper sums telescope
///    to "merged aggregate ± merged correction"). Loose bounds are exact
///    for COUNT data; *expected* bounds involve per-pixel area×count
///    products whose regrouping can differ from single-device execution by
///    FP rounding, which is why the Executor's bitwise path recomputes
///    expected ranges from the gathered point FBO instead of merging them
///    (see Executor::Execute). The merge here is what a bandwidth-limited
///    multi-node gather would use.
///  * PhaseTimer — phases sum name-wise: the merged breakdown is aggregate
///    device time (Σ over shards), not wall time, which parallel shards
///    overlap.
#pragma once

#include <vector>

#include "agg/result_range.h"
#include "common/status.h"
#include "common/timer.h"
#include "gpu/counters.h"
#include "raster/pipeline.h"

namespace rj::agg {

/// One shard's gathered outputs. Default-constructed members mean "this
/// shard produced nothing of that kind" (zero-size arrays/ranges are
/// skipped by the merge, so shards that executed no work — an empty shard
/// of a CPU-only variant, say — need no special casing).
struct ShardPartial {
  raster::ResultArrays arrays{0};
  ResultRanges ranges;
  gpu::CountersSnapshot counters;
  PhaseTimer timing;
};

/// The gathered whole.
struct MergedPartials {
  raster::ResultArrays arrays{0};
  ResultRanges ranges;
  gpu::CountersSnapshot counters;
  PhaseTimer timing;
};

/// Merges shard partials in ascending index order. Non-empty arrays (and
/// non-empty ranges) must agree on the polygon count across shards —
/// mismatch is an InvalidArgument, the scatter produced partials of
/// different queries. An all-empty input merges to empty partials.
Result<MergedPartials> MergePartials(const std::vector<ShardPartial>& parts);

}  // namespace rj::agg
