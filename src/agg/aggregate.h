/// \file aggregate.h
/// \brief Aggregate functions over join results (§5 "Aggregates").
///
/// The paper classifies aggregates (after Gray et al.'s data-cube paper)
/// into distributive (COUNT, SUM, MIN, MAX), algebraic (AVG = SUM/COUNT)
/// and holistic (MEDIAN — unsupported by design, as partitioned partial
/// aggregation cannot compute it). The raster pipeline accumulates the
/// distributive primitives per pixel and per polygon; this module finalizes
/// them into the query's requested aggregate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "raster/pipeline.h"

namespace rj {

enum class AggregateKind { kCount, kSum, kAverage, kMin, kMax };

/// Human-readable name ("COUNT", "SUM", ...).
std::string AggregateKindName(AggregateKind kind);

/// True for aggregates computable by merging disjoint partial aggregates
/// (everything here except kAverage, which is algebraic over two of them).
bool IsDistributive(AggregateKind kind);

/// Final per-polygon value of the requested aggregate from the accumulated
/// ResultArrays. For empty groups: COUNT/SUM are 0, AVG/MIN/MAX are NaN.
std::vector<double> FinalizeAggregate(AggregateKind kind,
                                      const raster::ResultArrays& arrays);

/// Merges partial ResultArrays from multiple batches/tiles (distributive
/// merge; the identity the out-of-core path relies on).
raster::ResultArrays MergeResults(const std::vector<raster::ResultArrays>& parts);

}  // namespace rj
