#include "agg/merge_partials.h"

#include <string>

namespace rj::agg {

Result<MergedPartials> MergePartials(const std::vector<ShardPartial>& parts) {
  MergedPartials merged;

  // Establish the polygon count from the first non-empty shard; every
  // later non-empty shard must agree.
  std::size_t num_polygons = 0;
  bool have_arrays = false;
  for (const ShardPartial& part : parts) {
    if (part.arrays.count.size() == 0) continue;
    if (!have_arrays) {
      num_polygons = part.arrays.count.size();
      have_arrays = true;
    } else if (part.arrays.count.size() != num_polygons) {
      return Status::InvalidArgument(
          "shard partials disagree on polygon count: " +
          std::to_string(num_polygons) + " vs " +
          std::to_string(part.arrays.count.size()));
    }
  }
  if (have_arrays) {
    merged.arrays.Resize(num_polygons);
    for (const ShardPartial& part : parts) {
      if (part.arrays.count.size() == 0) continue;
      merged.arrays.AddFrom(part.arrays);
    }
  }

  // Ranges: component-wise interval sums (see header for the exactness
  // contract). Loose and expected vectors travel together.
  std::size_t num_ranged = 0;
  bool have_ranges = false;
  for (const ShardPartial& part : parts) {
    if (part.ranges.loose.empty() && part.ranges.expected.empty()) continue;
    if (part.ranges.loose.size() != part.ranges.expected.size()) {
      return Status::InvalidArgument(
          "shard ranges have mismatched loose/expected sizes");
    }
    if (!have_ranges) {
      num_ranged = part.ranges.loose.size();
      have_ranges = true;
    } else if (part.ranges.loose.size() != num_ranged) {
      return Status::InvalidArgument(
          "shard partials disagree on ranged polygon count");
    }
  }
  if (have_ranges) {
    merged.ranges.loose.assign(num_ranged, ResultInterval{});
    merged.ranges.expected.assign(num_ranged, ResultInterval{});
    for (const ShardPartial& part : parts) {
      if (part.ranges.loose.empty()) continue;
      for (std::size_t i = 0; i < num_ranged; ++i) {
        merged.ranges.loose[i].lower += part.ranges.loose[i].lower;
        merged.ranges.loose[i].upper += part.ranges.loose[i].upper;
        merged.ranges.expected[i].lower += part.ranges.expected[i].lower;
        merged.ranges.expected[i].upper += part.ranges.expected[i].upper;
      }
    }
  }

  for (const ShardPartial& part : parts) {
    merged.counters = merged.counters.Plus(part.counters);
    for (const auto& [name, seconds] : part.timing.phases()) {
      merged.timing.Add(name, seconds);
    }
  }
  return merged;
}

}  // namespace rj::agg
