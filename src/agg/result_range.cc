#include "agg/result_range.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "geometry/clip.h"
#include "raster/conservative.h"
#include "raster/rasterizer.h"

namespace rj {

namespace {

/// Packs a pixel coordinate into one 64-bit key.
inline std::uint64_t PixelKey(std::int32_t x, std::int32_t y) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
         static_cast<std::uint32_t>(y);
}

}  // namespace

Result<ResultRanges> ComputeResultRanges(const raster::Viewport& vp,
                                         const PolygonSet& polys,
                                         const TriangleSoup& soup,
                                         const raster::Fbo& point_fbo,
                                         const std::vector<double>& approx,
                                         gpu::Counters* counters,
                                         ThreadPool* pool) {
  const std::size_t n = polys.size();
  if (approx.size() != n) {
    return Status::InvalidArgument(
        "approximate result size does not match polygon count");
  }

  // Group triangles by polygon id for per-polygon coverage queries.
  std::vector<std::vector<const Triangle*>> tris_of(n);
  for (const Triangle& t : soup) {
    if (t.polygon_id < 0 || static_cast<std::size_t>(t.polygon_id) >= n) {
      return Status::InvalidArgument("triangle with out-of-range polygon id");
    }
    tris_of[static_cast<std::size_t>(t.polygon_id)].push_back(&t);
  }

  ResultRanges out;
  out.loose.resize(n);
  out.expected.resize(n);

  // Classifies polygon i's boundary pixels and fills its intervals; returns
  // the pixels touched (the fragment meter contribution).
  const auto range_one_polygon = [&](std::size_t i) -> std::uint64_t {
    // Regular coverage: pixels whose center the triangulation covers.
    std::unordered_set<std::uint64_t> regular;
    for (const Triangle* t : tris_of[i]) {
      raster::RasterizeTriangle(
          vp.ToScreen(t->a), vp.ToScreen(t->b), vp.ToScreen(t->c),
          point_fbo.width(), point_fbo.height(),
          [&regular](std::int32_t x, std::int32_t y) {
            regular.insert(PixelKey(x, y));
          });
    }
    // Conservative coverage: every pixel the polygon touches at all.
    std::unordered_set<std::uint64_t> conservative;
    for (const Triangle* t : tris_of[i]) {
      raster::RasterizeTriangleConservative(
          vp.ToScreen(t->a), vp.ToScreen(t->b), vp.ToScreen(t->c),
          point_fbo.width(), point_fbo.height(),
          [&conservative](std::int32_t x, std::int32_t y) {
            conservative.insert(PixelKey(x, y));
          });
    }

    double loose_plus = 0.0, loose_minus = 0.0;
    double exp_plus = 0.0, exp_minus = 0.0;

    // False-positive candidates: regular pixels only partially inside the
    // polygon (the outline crosses them). Fraction f = covered area ratio;
    // the (1 - f) share of their count may be spurious.
    for (const std::uint64_t key : regular) {
      const std::int32_t x = static_cast<std::int32_t>(key >> 32);
      const std::int32_t y = static_cast<std::int32_t>(key & 0xFFFFFFFFu);
      const double cnt = point_fbo.At(x, y, raster::kChannelCount);
      if (cnt == 0.0) continue;
      const double f =
          PolygonRectCoverageFraction(polys[i], vp.PixelWorldRect(x, y));
      if (f < 1.0) {
        loose_plus += cnt;
        exp_plus += (1.0 - f) * cnt;
      }
    }
    // False-negative candidates: conservatively-covered pixels that regular
    // rasterization skipped. The f share of their count may be missing.
    for (const std::uint64_t key : conservative) {
      if (regular.count(key) != 0) continue;
      const std::int32_t x = static_cast<std::int32_t>(key >> 32);
      const std::int32_t y = static_cast<std::int32_t>(key & 0xFFFFFFFFu);
      const double cnt = point_fbo.At(x, y, raster::kChannelCount);
      if (cnt == 0.0) continue;
      const double f =
          PolygonRectCoverageFraction(polys[i], vp.PixelWorldRect(x, y));
      loose_minus += cnt;
      exp_minus += f * cnt;
    }

    out.loose[i] = {approx[i] - loose_plus, approx[i] + loose_minus};
    out.expected[i] = {approx[i] - exp_plus, approx[i] + exp_minus};
    return regular.size() + conservative.size();
  };

  std::uint64_t fragments = 0;
  const std::size_t num_chunks = pool != nullptr ? pool->NumChunks(n) : 1;
  if (num_chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fragments += range_one_polygon(i);
  } else {
    // Each polygon writes only its own out.loose[i]/out.expected[i] slots,
    // so chunks of the polygon range are independent; the fragment meter is
    // summed in chunk order to match the sequential total exactly.
    std::vector<std::uint64_t> frags_per_chunk(num_chunks, 0);
    pool->ParallelFor(n, [&](std::size_t begin, std::size_t end,
                             std::size_t chunk) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += range_one_polygon(i);
      frags_per_chunk[chunk] = local;
    });
    for (const std::uint64_t f : frags_per_chunk) fragments += f;
  }
  if (counters != nullptr) counters->AddFragments(fragments);
  return out;
}

}  // namespace rj
