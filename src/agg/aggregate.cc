#include "agg/aggregate.h"

#include <cmath>
#include <limits>

namespace rj {

std::string AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount: return "COUNT";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kAverage: return "AVG";
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
  }
  return "?";
}

bool IsDistributive(AggregateKind kind) {
  return kind != AggregateKind::kAverage;
}

std::vector<double> FinalizeAggregate(AggregateKind kind,
                                      const raster::ResultArrays& arrays) {
  const std::size_t n = arrays.count.size();
  std::vector<double> out(n, 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < n; ++i) {
    const bool empty = arrays.count[i] == 0.0;
    switch (kind) {
      case AggregateKind::kCount:
        out[i] = arrays.count[i];
        break;
      case AggregateKind::kSum:
        out[i] = arrays.sum[i];
        break;
      case AggregateKind::kAverage:
        out[i] = empty ? nan : arrays.sum[i] / arrays.count[i];
        break;
      case AggregateKind::kMin:
        out[i] = empty ? nan : arrays.min[i];
        break;
      case AggregateKind::kMax:
        out[i] = empty ? nan : arrays.max[i];
        break;
    }
  }
  return out;
}

raster::ResultArrays MergeResults(
    const std::vector<raster::ResultArrays>& parts) {
  if (parts.empty()) return raster::ResultArrays(0);
  raster::ResultArrays merged(parts[0].count.size());
  for (const auto& part : parts) merged.AddFrom(part);
  return merged;
}

}  // namespace rj
