/// \file result_range.h
/// \brief Result-range estimation for the bounded raster join (§5).
///
/// Only boundary pixels contribute approximation error. For polygon i, let
/// P+ be its false-positive pixels (counted but possibly outside) and P-
/// its false-negative pixels (not counted but possibly inside). Then:
///  * loose bounds  : [A[i] - Σ_{P+} F(x,y),  A[i] + Σ_{P-} F(x,y)]
///    hold with 100% confidence;
///  * expected bounds weight each pixel's contribution by the fraction of
///    the pixel's area that intersects the polygon (uniform-in-pixel
///    assumption), giving much tighter intervals.
///
/// False-positive pixels are those covered by regular rasterization that
/// the outline crosses; false-negative pixels are covered by conservative
/// rasterization but not by regular rasterization (§6.1).
#pragma once

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "geometry/polygon.h"
#include "gpu/counters.h"
#include "raster/fbo.h"
#include "raster/viewport.h"
#include "triangulate/triangulation.h"

namespace rj {

/// Closed interval around an approximate aggregate value.
struct ResultInterval {
  double lower = 0.0;
  double upper = 0.0;

  bool Contains(double v) const { return v >= lower && v <= upper; }
  double Width() const { return upper - lower; }
};

/// Per-polygon intervals for a COUNT query.
struct ResultRanges {
  std::vector<ResultInterval> loose;     ///< 100%-confidence bounds
  std::vector<ResultInterval> expected;  ///< uniform-assumption bounds
};

/// Computes result ranges for the bounded raster join.
///
/// \param vp        viewport of the (single-tile) canvas
/// \param polys     the polygon set (ids must be 0..n-1)
/// \param soup      triangulation of `polys` (for regular-coverage tests)
/// \param point_fbo the point FBO after DrawPoints
/// \param approx    the approximate per-polygon COUNT from the bounded join
/// \param pool      when it has more than one worker, polygons are split
///                  across workers (each polygon's intervals are
///                  independent, so results and the fragment meter are
///                  identical to the sequential pass for any worker count)
/// Uses conservative vs regular rasterization of each polygon to classify
/// its boundary pixels into P+ / P-, then applies the §5 formulas with
/// exact pixel∩polygon area fractions for the expected bounds.
Result<ResultRanges> ComputeResultRanges(const raster::Viewport& vp,
                                         const PolygonSet& polys,
                                         const TriangleSoup& soup,
                                         const raster::Fbo& point_fbo,
                                         const std::vector<double>& approx,
                                         gpu::Counters* counters = nullptr,
                                         ThreadPool* pool = nullptr);

}  // namespace rj
