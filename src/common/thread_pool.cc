#include "common/thread_pool.h"

#include <algorithm>

namespace rj {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) done_cv_.Wait(lock);
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const ChunkPlan plan = PlanChunks(n, num_threads());
  if (plan.count == 0) return;
  if (plan.count == 1) {
    fn(0, n, 0);
    return;
  }
  // Per-call completion state: concurrent ParallelFor calls share the pool
  // (the QueryService runs many queries against one device), so waiting on
  // the pool-global in-flight count would block one query on another's
  // tasks — and never unblock under a steady stream of submissions.
  struct CallState {
    Mutex mutex;
    CondVar cv;
    std::size_t remaining RJ_GUARDED_BY(mutex) = 0;
  };
  CallState call;
  {
    MutexLock lock(call.mutex);
    call.remaining = plan.count;
  }
  for (std::size_t c = 0; c < plan.count; ++c) {
    const std::size_t begin = c * plan.size;
    const std::size_t end = std::min(n, begin + plan.size);
    Submit([&fn, &call, begin, end, c] {
      fn(begin, end, c);
      MutexLock lock(call.mutex);
      if (--call.remaining == 0) call.cv.NotifyAll();
    });
  }
  MutexLock lock(call.mutex);
  while (call.remaining != 0) call.cv.Wait(lock);
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && tasks_.empty()) task_cv_.Wait(lock);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace rj
