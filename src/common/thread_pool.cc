#include "common/thread_pool.h"

#include <algorithm>

namespace rj {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const ChunkPlan plan = PlanChunks(n, num_threads());
  if (plan.count == 0) return;
  if (plan.count == 1) {
    fn(0, n, 0);
    return;
  }
  // Per-call completion state: concurrent ParallelFor calls share the pool
  // (the QueryService runs many queries against one device), so waiting on
  // the pool-global in-flight count would block one query on another's
  // tasks — and never unblock under a steady stream of submissions.
  struct CallState {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
  };
  CallState call{{}, {}, plan.count};
  for (std::size_t c = 0; c < plan.count; ++c) {
    const std::size_t begin = c * plan.size;
    const std::size_t end = std::min(n, begin + plan.size);
    Submit([&fn, &call, begin, end, c] {
      fn(begin, end, c);
      std::lock_guard<std::mutex> lock(call.mutex);
      if (--call.remaining == 0) call.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(call.mutex);
  call.cv.wait(lock, [&call] { return call.remaining == 0; });
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace rj
