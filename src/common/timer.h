/// \file timer.h
/// \brief Wall-clock timing utilities and named phase breakdowns.
///
/// The paper's figures 9/11/13 break query execution into phases
/// (host→device transfer, device processing, disk access). PhaseTimer
/// accumulates named durations so benches can print the same breakdown.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace rj {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time into named phases; phases may repeat (out-of-core
/// batches accumulate transfer time across batches, for example).
class PhaseTimer {
 public:
  /// Adds `seconds` to phase `name`.
  void Add(const std::string& name, double seconds) {
    phases_[name] += seconds;
  }

  /// Total seconds recorded in `name` (0 if never recorded).
  double Get(const std::string& name) const {
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
  }

  /// Sum over all phases.
  double Total() const;

  void Clear() { phases_.clear(); }

  const std::map<std::string, double>& phases() const { return phases_; }

  /// "phase1=12.3ms phase2=4.5ms" rendering for bench output.
  std::string ToString() const;

 private:
  std::map<std::string, double> phases_;
};

/// RAII helper: adds the scope's elapsed time to a PhaseTimer phase.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}
  ~ScopedPhase() { timer_->Add(name_, stopwatch_.ElapsedSeconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::string name_;
  Timer stopwatch_;
};

}  // namespace rj
