#include "common/timer.h"

#include <cstdio>

namespace rj {

double PhaseTimer::Total() const {
  double total = 0.0;
  for (const auto& [name, secs] : phases_) total += secs;
  return total;
}

std::string PhaseTimer::ToString() const {
  std::string out;
  for (const auto& [name, secs] : phases_) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s%s=%.3fms", out.empty() ? "" : " ",
                  name.c_str(), secs * 1e3);
    out += buf;
  }
  return out;
}

}  // namespace rj
