/// \file thread_annotations.h
/// \brief Clang thread-safety-analysis attribute macros (no-ops elsewhere).
///
/// These macros make the lock discipline documented in docs/CONCURRENCY.md
/// machine-checked: under clang, `-Wthread-safety -Werror` turns an
/// unguarded read of an `RJ_GUARDED_BY` field — or a call to an
/// `RJ_REQUIRES` helper without the lock held — into a compile error.
/// Under GCC (and any compiler without the attributes) every macro expands
/// to nothing, so the annotations cost nothing and cannot change codegen.
///
/// Conventions used throughout this repo:
///  - Mutex members are `rj::Mutex` (an annotated wrapper over
///    `std::mutex`; see mutex.h) — plain `std::mutex` is not a capability
///    type and would trigger -Wthread-safety-attributes.
///  - Fields a mutex protects carry `RJ_GUARDED_BY(mutex_)`.
///  - Private helpers named `*Locked` carry `RJ_REQUIRES(mutex_)`.
///  - Public entry points that take the lock themselves carry
///    `RJ_EXCLUDES(mutex_)` when a reentrant call would self-deadlock.
///  - Condition-variable waits use explicit `while (!cond) cv.Wait(lock);`
///    loops, never predicate lambdas: clang analyzes a lambda body as a
///    separate function that does not inherit the caller's held locks, so
///    a predicate touching guarded state is a false positive by design.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define RJ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RJ_THREAD_ANNOTATION__(x)  // no-op: GCC/MSVC lack the attributes
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics). Applied to rj::Mutex.
#define RJ_CAPABILITY(x) RJ_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (rj::MutexLock).
#define RJ_SCOPED_CAPABILITY RJ_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define RJ_GUARDED_BY(x) RJ_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define RJ_PT_GUARDED_BY(x) RJ_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and they
/// remain held on exit). Used on `*Locked()` private helpers.
#define RJ_REQUIRES(...) \
  RJ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held *shared* on entry.
#define RJ_REQUIRES_SHARED(...) \
  RJ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define RJ_ACQUIRE(...) \
  RJ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases a capability that was held on entry.
#define RJ_RELEASE(...) \
  RJ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts to acquire; the first argument is the return value
/// that signals success (true for try_lock).
#define RJ_TRY_ACQUIRE(...) \
  RJ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires
/// them itself; reentry would self-deadlock on std::mutex).
#define RJ_EXCLUDES(...) RJ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis only) that the capability is held at this
/// point, for control flow the analysis cannot follow.
#define RJ_ASSERT_CAPABILITY(x) \
  RJ_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define RJ_RETURN_CAPABILITY(x) RJ_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Reserved for
/// ownership-handoff protocols the lattice cannot express (see
/// join::BatchPipeline's slot state machine); every use carries a comment
/// explaining why the code is correct anyway.
#define RJ_NO_THREAD_SAFETY_ANALYSIS \
  RJ_THREAD_ANNOTATION__(no_thread_safety_analysis)
