#include "common/status.h"

namespace rj {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCapacityError: return "CapacityError";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace rj
