#include "common/status.h"

namespace rj {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCapacityError: return "CapacityError";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotFound: return "NotFound";
  }
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kCapacityError;
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kCapacityError: return 503;
    case StatusCode::kIOError: return 500;
    case StatusCode::kNotImplemented: return 501;
    case StatusCode::kInternal: return 500;
    case StatusCode::kNotFound: return 404;
  }
  return 500;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

std::string Status::ToJson() const {
  // Manual rendering (not json::Value) keeps status.h free of any json.h
  // dependency; the escaping helper is shared so the two cannot disagree.
  std::string out = "{\"code\":";
  out += std::to_string(static_cast<int>(code_));
  out += ",\"name\":\"";
  out += StatusCodeName(code_);
  out += "\",\"retryable\":";
  out += retryable() ? "true" : "false";
  out += ",\"http\":";
  out += std::to_string(HttpStatusFor(code_));
  out += ",\"message\":\"";
  out += json_detail::EscapeForJson(message_);
  out += "\"}";
  return out;
}

namespace json_detail {
std::string EscapeForJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  static const char* kHex = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}
}  // namespace json_detail

}  // namespace rj
