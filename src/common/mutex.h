/// \file mutex.h
/// \brief Annotated mutex / scoped-lock / condvar wrappers for clang's
/// thread-safety analysis.
///
/// libstdc++'s std::mutex carries no capability attribute, so a field
/// declared `RJ_GUARDED_BY(some_std_mutex_)` trips
/// -Wthread-safety-attributes. These zero-overhead wrappers exist solely
/// to carry the attributes; every locked subsystem in the repo uses them.
///
/// Wait discipline: CondVar::Wait keeps the capability "held" from the
/// analysis's point of view across the wait. That is sound — wait()
/// re-acquires the mutex before returning, so guarded state touched after
/// Wait returns really is protected — but it means missed-wakeup bugs are
/// still TSan's job, not this analysis's. Use explicit
/// `while (!cond) cv.Wait(lock);` loops, never predicate lambdas (a lambda
/// body is analyzed as a separate function that does not inherit the
/// caller's held locks).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace rj {

/// std::mutex with the `capability` attribute. Lock it through MutexLock;
/// `native()` exists only so CondVar can wait on it.
class RJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RJ_ACQUIRE() { mu_.lock(); }
  void unlock() RJ_RELEASE() { mu_.unlock(); }
  bool try_lock() RJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable interop only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (RAII, analysis-visible). Holds a
/// std::unique_lock so CondVar can wait with it and so critical sections
/// that must drop the lock mid-flight (e.g. Device::Allocate's rollback
/// path) can Unlock()/Lock() explicitly without losing analysis coverage.
class RJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RJ_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RJ_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drop the lock before a blocking or reentrant operation...
  void Unlock() RJ_RELEASE() { lock_.unlock(); }
  /// ...and re-take it afterwards.
  void Lock() RJ_ACQUIRE() { lock_.lock(); }

  /// The wrapped unique_lock, for std::condition_variable interop only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable that waits on a MutexLock. No annotation on the
/// wait methods: the capability is treated as continuously held across
/// the wait, which is sound because wait() re-acquires before returning.
class CondVar {
 public:
  void Wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <class Rep, class Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rj
