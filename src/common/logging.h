/// \file logging.h
/// \brief Minimal leveled logging to stderr.
#pragma once

#include <sstream>
#include <string>

namespace rj {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted (default: Info).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);

/// Stream-style builder used by the RJ_LOG macro.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define RJ_LOG(level) ::rj::internal::LogStream(::rj::LogLevel::k##level)

}  // namespace rj
