/// \file rng.h
/// \brief Deterministic pseudo-random number generation (xoshiro256++).
///
/// All data generators take explicit seeds so every experiment in
/// EXPERIMENTS.md is exactly reproducible. xoshiro256++ is used instead of
/// std::mt19937 for speed and cross-platform determinism of the raw stream.
#pragma once

#include <cstdint>
#include <cmath>

namespace rj {

/// xoshiro256++ generator (public-domain algorithm by Blackman & Vigna).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      si = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return Uniform() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace rj
