#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rj::json {

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::Set(const std::string& key, Value v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

std::string Escape(const std::string& s) { return json_detail::EscapeForJson(s); }

std::string Value::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

void Value::SerializeTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      if (!std::isfinite(number_)) {
        // JSON has no NaN/Inf literal; the schema encodes them as null and
        // readers treat null numbers as NaN (§5 ranges of empty groups).
        *out += "null";
        return;
      }
      char buf[32];
      // %.17g round-trips every double; integral values print plainly.
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      *out += buf;
      return;
    }
    case Type::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      return;
    case Type::kArray:
      *out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        items_[i].SerializeTo(out);
      }
      *out += ']';
      return;
    case Type::kObject:
      *out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += '"';
        *out += Escape(members_[i].first);
        *out += "\":";
        members_[i].second.SerializeTo(out);
      }
      *out += '}';
      return;
  }
}

namespace {

/// Recursive-descent parser over a bounded string. Depth-limited so hostile
/// network input cannot overflow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    Value v;
    RJ_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(Value* out, std::size_t depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't': return ParseLiteral("true", Value::Bool(true), out);
      case 'f': return ParseLiteral("false", Value::Bool(false), out);
      case 'n': return ParseLiteral("null", Value::Null(), out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit, Value v, Value* out) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("invalid literal (expected ") + lit + ")");
      }
    }
    *out = std::move(v);
    return Status::OK();
  }

  bool AtDigit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  // Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // strtod alone is too permissive (leading zeros, "+1", hex, "inf").
  Status ParseNumber(Value* out) {
    const std::size_t start = pos_;
    Consume('-');
    if (!AtDigit()) return Fail("invalid value");
    if (text_[pos_] == '0') {
      ++pos_;
      if (AtDigit()) return Fail("leading zeros are not allowed");
    } else {
      while (AtDigit()) ++pos_;
    }
    if (Consume('.')) {
      if (!AtDigit()) return Fail("expected digit after decimal point");
      while (AtDigit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!AtDigit()) return Fail("expected digit in exponent");
      while (AtDigit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      return Fail("invalid number '" + token + "'");
    }
    *out = Value::Number(d);
    return Status::OK();
  }

  Status ParseString(Value* out) {
    std::string s;
    RJ_RETURN_NOT_OK(ParseRawString(&s));
    *out = Value::Str(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    RJ_RETURN_NOT_OK(Expect('"'));
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          RJ_RETURN_NOT_OK(ParseHex4(&cp));
          // Surrogate pair → single code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              RJ_RETURN_NOT_OK(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(cp, &s);
          break;
        }
        default: return Fail("invalid escape character");
      }
    }
    *out = std::move(s);
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Fail("truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(unsigned cp, std::string* s) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseArray(Value* out, std::size_t depth) {
    RJ_RETURN_NOT_OK(Expect('['));
    Value arr = Value::Array();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      Value item;
      RJ_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      arr.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      RJ_RETURN_NOT_OK(Expect(','));
    }
    *out = std::move(arr);
    return Status::OK();
  }

  Status ParseObject(Value* out, std::size_t depth) {
    RJ_RETURN_NOT_OK(Expect('{'));
    Value obj = Value::Object();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      RJ_RETURN_NOT_OK(ParseRawString(&key));
      if (obj.Find(key) != nullptr) {
        return Fail("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      RJ_RETURN_NOT_OK(Expect(':'));
      Value v;
      RJ_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) break;
      RJ_RETURN_NOT_OK(Expect(','));
    }
    *out = std::move(obj);
    return Status::OK();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace rj::json
