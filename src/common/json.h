/// \file json.h
/// \brief Minimal dependency-free JSON value, parser, and serializer.
///
/// The v1 network schema (docs/API.md) is the single serialization shared
/// by the HTTP server, the client, the CLI, and the traffic bench, so the
/// JSON layer lives in common/ with no dependencies beyond Status. Scope is
/// deliberately small: UTF-8 text, doubles for every number (the schema
/// never carries integers that lose precision in a double), objects that
/// preserve insertion order so serialization is deterministic, and strict
/// parsing (no trailing garbage, bounded nesting depth).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rj::json {

/// A JSON document node. Value-semantic; copies are deep.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Preconditions: the matching is_*() holds.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Array access.
  std::size_t size() const { return items_.size(); }
  const Value& operator[](std::size_t i) const { return items_[i]; }
  Value& Append(Value v) {
    items_.push_back(std::move(v));
    return items_.back();
  }

  /// Object access (insertion order preserved; duplicate keys rejected by
  /// the parser, last-write-wins through Set).
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }
  /// The member value, or nullptr when absent.
  const Value* Find(const std::string& key) const;
  Value& Set(const std::string& key, Value v);

  /// Compact serialization (no whitespace). Numbers render with %.17g so
  /// doubles round-trip bit-exactly through parse(serialize(v)).
  std::string Serialize() const;

 private:
  void SerializeTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;                              // kArray
  std::vector<std::pair<std::string, Value>> members_;    // kObject
};

/// Parses a complete JSON document. InvalidArgument on malformed input,
/// duplicate object keys, nesting deeper than 64 levels, or trailing
/// non-whitespace.
Result<Value> Parse(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Shared by Status::ToJson, which cannot depend on Value.
std::string Escape(const std::string& s);

}  // namespace rj::json
