/// \file status.h
/// \brief Arrow-style error handling: Status and Result<T>.
///
/// The library does not throw exceptions across public API boundaries;
/// fallible operations return rj::Status (void results) or rj::Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace rj {

/// Machine-readable error categories.
///
/// The numeric values are a stable public contract: they appear verbatim in
/// the v1 network schema (`error.code`, docs/API.md) and in persisted bench
/// output, so existing values must never be renumbered — new codes append.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,  ///< Malformed request; retrying cannot succeed.
  kOutOfRange = 2,       ///< Index/interval outside the valid domain.
  kCapacityError = 3,    ///< Resource exhausted (queue, device memory) —
                         ///< transient; retry after backoff.
  kIOError = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kNotFound = 7,         ///< Named entity (dataset) does not exist.
};

/// Stable name of a code ("CapacityError", ...), for logs and the wire.
const char* StatusCodeName(StatusCode code);

namespace json_detail {
/// JSON string-literal escaping shared by Status::ToJson and json::Escape
/// (status.h must stay dependency-free, so the helper lives here).
std::string EscapeForJson(const std::string& s);
}  // namespace json_detail

/// True when the condition is transient and the same request may succeed if
/// retried after backoff (queue full, device memory exhausted, draining).
/// Validation, not-found, and internal errors are fatal for the request —
/// clients must not spin on them.
bool IsRetryable(StatusCode code);

/// The HTTP status the v1 protocol maps this code to: kOk → 200,
/// validation (kInvalidArgument/kOutOfRange) → 400, kNotFound → 404,
/// kCapacityError → 503 (with Retry-After), kNotImplemented → 501,
/// everything else → 500. Used by the HTTP front end and by clients that
/// reverse the mapping.
int HttpStatusFor(StatusCode code);

/// \brief Outcome of a fallible operation, carrying a code and message.
///
/// Mirrors the Status idiom used by Arrow/RocksDB: cheap to move, explicit
/// ok() check, factory constructors per error category.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<Code>: <message>" rendering for logs and test output.
  std::string ToString() const;

  /// True when retrying the failed operation may succeed (IsRetryable of
  /// the code); OK statuses are trivially not retryable.
  bool retryable() const { return IsRetryable(code_); }

  /// The v1 wire rendering of this status, used verbatim by the HTTP front
  /// end's error responses and available to ServiceResponse consumers:
  ///   {"code":3,"name":"CapacityError","retryable":true,"http":503,
  ///    "message":"..."}
  std::string ToJson() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : v_(std::move(value)) {}
  /*implicit*/ Result(Status status) : v_(std::move(status)) {
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    // get_if instead of get: the throwing branch of std::get trips GCC 12's
    // -Wmaybe-uninitialized through the inlined string member at -O2.
    const Status* s = std::get_if<Status>(&v_);
    return s != nullptr ? *s : kOk;
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  /// Moves the value out; precondition: ok().
  T MoveValueUnsafe() { return std::move(std::get<T>(v_)); }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK status out of the enclosing function.
#define RJ_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::rj::Status _st = (expr);                \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assigns the value of a Result to `lhs`, or propagates its error status.
#define RJ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).MoveValueUnsafe();

#define RJ_ASSIGN_OR_RETURN(lhs, rexpr) \
  RJ_ASSIGN_OR_RETURN_IMPL(RJ_CONCAT(_rj_result_, __LINE__), lhs, rexpr)

#define RJ_CONCAT_INNER(a, b) a##b
#define RJ_CONCAT(a, b) RJ_CONCAT_INNER(a, b)

}  // namespace rj
