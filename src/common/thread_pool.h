/// \file thread_pool.h
/// \brief Fixed-size worker pool used to emulate GPU SIMT parallelism.
///
/// The simulated device (gpu::Device) executes shader stages by splitting
/// the primitive stream across pool workers. On a many-core host this gives
/// real parallel speedups analogous to the GPU's; on a single-core host the
/// pool degrades gracefully to sequential execution (the paper-shape metrics
/// in bench output are work-proportional, see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace rj {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; tasks may run on any worker in any order.
  void Submit(std::function<void()> task) RJ_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing.
  void Wait() RJ_EXCLUDES(mutex_);

  /// Number of contiguous chunks ParallelFor(n, ...) will split [0, n)
  /// into. Chunk index c covers an ascending range; parallel reductions
  /// size their per-chunk state with this so merge order is well defined.
  /// ParallelFor derives its partition from the same PlanChunks call, so
  /// the two can never drift apart.
  std::size_t NumChunks(std::size_t n) const {
    return PlanChunks(n, num_threads()).count;
  }

  /// Splits [0, n) into NumChunks(n) contiguous chunks and runs
  /// `fn(begin, end, chunk_index)` on the pool, blocking until done.
  /// Runs inline when the pool has a single worker (avoids queue overhead).
  /// Safe to call from multiple threads concurrently: each call waits only
  /// for its own chunks, not for other callers' tasks (QueryService runs
  /// concurrent queries against one shared device pool).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& Default();

 private:
  /// The single source of truth for ParallelFor's partition of [0, n).
  struct ChunkPlan {
    std::size_t size = 0;   ///< elements per chunk (last one may be short)
    std::size_t count = 0;  ///< number of non-empty chunks
  };
  static ChunkPlan PlanChunks(std::size_t n, std::size_t workers) {
    if (n == 0) return {0, 0};
    if (workers <= 1 || n == 1) return {n, 1};
    const std::size_t chunks = std::min(n, workers);
    const std::size_t size = (n + chunks - 1) / chunks;
    return {size, (n + size - 1) / size};
  }

  void WorkerLoop() RJ_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< immutable after construction
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ RJ_GUARDED_BY(mutex_);
  CondVar task_cv_;
  CondVar done_cv_;
  /// Tasks submitted but not yet finished (queued + executing).
  std::size_t in_flight_ RJ_GUARDED_BY(mutex_) = 0;
  bool shutdown_ RJ_GUARDED_BY(mutex_) = false;
};

}  // namespace rj
