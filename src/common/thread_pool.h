/// \file thread_pool.h
/// \brief Fixed-size worker pool used to emulate GPU SIMT parallelism.
///
/// The simulated device (gpu::Device) executes shader stages by splitting
/// the primitive stream across pool workers. On a many-core host this gives
/// real parallel speedups analogous to the GPU's; on a single-core host the
/// pool degrades gracefully to sequential execution (the paper-shape metrics
/// in bench output are work-proportional, see DESIGN.md §2).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rj {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; tasks may run on any worker in any order.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Splits [0, n) into contiguous chunks and runs
  /// `fn(begin, end, worker_index)` on the pool, blocking until done.
  /// Runs inline when the pool has a single worker (avoids queue overhead).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace rj
