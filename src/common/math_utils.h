/// \file math_utils.h
/// \brief Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace rj {

inline constexpr double kPi = 3.14159265358979323846;

/// Clamps v to [lo, hi].
template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return std::max(lo, std::min(hi, v));
}

/// True if |a - b| <= tol.
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Integer ceiling division for non-negative operands.
inline std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Square of x (readability helper for distance computations).
inline double Sq(double x) { return x * x; }

}  // namespace rj
