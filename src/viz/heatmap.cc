#include "viz/heatmap.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/math_utils.h"
#include "raster/rasterizer.h"
#include "raster/viewport.h"

namespace rj {

Rgb SequentialColor(double normalized, int classes) {
  const double q = Clamp(normalized, 0.0, 1.0);
  // Discretize into `classes` bins (sequential maps have limited
  // perceivable classes), then interpolate white → deep blue.
  const double binned =
      classes > 0 ? std::floor(q * classes) / std::max(1, classes - 1) : q;
  const double t = Clamp(binned, 0.0, 1.0);
  Rgb c;
  c.r = static_cast<std::uint8_t>(std::lround(255.0 * (1.0 - 0.85 * t)));
  c.g = static_cast<std::uint8_t>(std::lround(255.0 * (1.0 - 0.65 * t)));
  c.b = static_cast<std::uint8_t>(std::lround(255.0 * (1.0 - 0.25 * t)));
  return c;
}

Status HeatmapImage::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open: " + path);
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (std::int32_t y = height_ - 1; y >= 0; --y) {  // +y up
    for (std::int32_t x = 0; x < width_; ++x) {
      const Rgb& p = At(x, y);
      out.put(static_cast<char>(p.r));
      out.put(static_cast<char>(p.g));
      out.put(static_cast<char>(p.b));
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::vector<double> NormalizeValues(const std::vector<double>& values) {
  double max_v = 0.0;
  for (const double v : values) {
    if (!std::isnan(v)) max_v = std::max(max_v, v);
  }
  std::vector<double> out(values.size(), 0.0);
  if (max_v <= 0.0) return out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = std::isnan(values[i]) ? 0.0 : values[i] / max_v;
  }
  return out;
}

Result<HeatmapImage> RenderChoropleth(const PolygonSet& polys,
                                      const TriangleSoup& soup,
                                      const std::vector<double>& values,
                                      std::int32_t width, std::int32_t height,
                                      int color_classes) {
  if (values.size() != polys.size()) {
    return Status::InvalidArgument("values size != polygon count");
  }
  HeatmapImage img(width, height);
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) img.At(x, y) = {255, 255, 255};
  }

  const BBox world = ComputeExtent(polys);
  raster::Viewport vp(world, width, height);
  const std::vector<double> norm = NormalizeValues(values);

  for (const Triangle& tri : soup) {
    const Rgb color =
        SequentialColor(norm[static_cast<std::size_t>(tri.polygon_id)],
                        color_classes);
    raster::RasterizeTriangle(vp.ToScreen(tri.a), vp.ToScreen(tri.b),
                              vp.ToScreen(tri.c), width, height,
                              [&img, color](std::int32_t x, std::int32_t y) {
                                img.At(x, y) = color;
                              });
  }
  return img;
}

}  // namespace rj
