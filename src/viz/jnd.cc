#include "viz/jnd.h"

#include <algorithm>
#include <cmath>

namespace rj {

Result<JndReport> CompareForPerception(const std::vector<double>& approx,
                                       const std::vector<double>& exact,
                                       int classes) {
  if (approx.size() != exact.size()) {
    return Status::InvalidArgument("result vectors differ in size");
  }
  if (classes <= 0) {
    return Status::InvalidArgument("classes must be positive");
  }

  double max_exact = 0.0;
  for (const double v : exact) {
    if (!std::isnan(v)) max_exact = std::max(max_exact, v);
  }

  JndReport report;
  report.jnd = JndThreshold(classes);
  if (max_exact <= 0.0) return report;

  double sum_err = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double a = std::isnan(approx[i]) ? 0.0 : approx[i];
    const double e = std::isnan(exact[i]) ? 0.0 : exact[i];
    const double err = std::fabs(a - e) / max_exact;
    report.max_normalized_error = std::max(report.max_normalized_error, err);
    sum_err += err;
    if (err >= report.jnd) ++report.perceivable_count;
  }
  report.mean_normalized_error = sum_err / static_cast<double>(exact.size());
  return report;
}

}  // namespace rj
