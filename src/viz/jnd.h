/// \file jnd.h
/// \brief Just-noticeable-difference analysis (§7.6 "Effect on
/// Visualizations").
///
/// The paper argues approximate and accurate choropleths are perceptually
/// identical: a sequential color map has at most 9 perceivable classes, so
/// JND = 1/9 in normalized value, and the bounded join's maximum
/// normalized error (< 0.002 at ε = 20 m) is far below it. These helpers
/// compute that comparison for any pair of result vectors.
#pragma once

#include <vector>

#include "common/status.h"

namespace rj {

/// JND threshold for a sequential map with `classes` perceivable classes.
inline double JndThreshold(int classes = 9) { return 1.0 / classes; }

struct JndReport {
  double max_normalized_error = 0.0;   ///< max |approx - exact| / max(exact)
  double mean_normalized_error = 0.0;
  double jnd = 1.0 / 9.0;
  /// Polygons whose color class could differ (error ≥ JND).
  std::size_t perceivable_count = 0;
  bool Indistinguishable() const { return perceivable_count == 0; }
};

/// Compares approximate vs exact per-polygon values under the JND model.
Result<JndReport> CompareForPerception(const std::vector<double>& approx,
                                       const std::vector<double>& exact,
                                       int classes = 9);

}  // namespace rj
