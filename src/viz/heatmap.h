/// \file heatmap.h
/// \brief Choropleth rendering of per-polygon aggregates to PPM images.
///
/// Used to reproduce Figure 6 of the paper (approximate vs accurate
/// visualizations are perceptually indistinguishable) and by the Urbane-
/// style example. Values are normalized and mapped through a sequential
/// color map; the JND analysis in viz/jnd.h quantifies perceptibility.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "triangulate/triangulation.h"

namespace rj {

/// 8-bit RGB color.
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// Sequential single-hue color map with `classes` perceivable classes
/// (ColorBrewer-style; the paper cites a maximum of 9 usable classes).
Rgb SequentialColor(double normalized, int classes = 9);

/// A rasterized choropleth image.
class HeatmapImage {
 public:
  HeatmapImage(std::int32_t width, std::int32_t height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * height) {}

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }

  Rgb& At(std::int32_t x, std::int32_t y) {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  const Rgb& At(std::int32_t x, std::int32_t y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Writes a binary PPM (P6). Rows are flipped so +y is up.
  Status WritePpm(const std::string& path) const;

 private:
  std::int32_t width_;
  std::int32_t height_;
  std::vector<Rgb> pixels_;
};

/// Renders a choropleth: each polygon filled with the color of its
/// normalized value (value / max over polygons). Background is white.
Result<HeatmapImage> RenderChoropleth(const PolygonSet& polys,
                                      const TriangleSoup& soup,
                                      const std::vector<double>& values,
                                      std::int32_t width, std::int32_t height,
                                      int color_classes = 9);

/// Normalizes values to [0, 1] by the max (NaN→0).
std::vector<double> NormalizeValues(const std::vector<double>& values);

}  // namespace rj
